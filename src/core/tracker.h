// Tracking-phase message codecs and the tracker-side key table.
//
// Every node projects its table to distinct join keys (plus local counts in
// the 3-/4-phase versions) and ships them to the tracker responsible for
// each key: processT at hash(key) mod N. The tracker merges the incoming
// streams into per-key placements that the scheduler consumes.
#ifndef TJ_CORE_TRACKER_H_
#define TJ_CORE_TRACKER_H_

#include <cstdint>
#include <vector>

#include "core/join_types.h"
#include "core/schedule.h"
#include "encoding/node_group.h"
#include "exec/key_aggregate.h"
#include "net/message.h"

namespace tj {

/// One tracker-side fact: node `node` holds `count` tuples of `key`.
struct TrackEntry {
  uint64_t key;
  uint32_t node;
  uint64_t count;

  bool operator==(const TrackEntry&) const = default;
};

/// Serializes one node's aggregated distinct keys into per-destination
/// tracking messages (destination = hash(key) mod num_nodes).
/// With `with_counts` false (2-phase), only keys travel; counts are implied 1
/// ("present"). Counts wider than cfg.count_bytes are split into saturated
/// chunks the tracker re-aggregates ("we can aggregate at the destination").
/// With cfg.delta_tracking, key streams are sorted+delta coded and counts
/// are LEB128.
std::vector<ByteBuffer> EncodeTrackingMessages(
    const std::vector<KeyCount>& keys, const JoinConfig& config,
    bool with_counts, uint32_t num_nodes);

/// Parses one tracking message back into (key, src, count) entries.
/// Duplicate (key, node) chunks are NOT merged here; MergeTrackEntries does.
/// Aborts on malformed input; use the Try variant for untrusted bytes.
std::vector<TrackEntry> DecodeTrackingMessage(const Message& message,
                                              const JoinConfig& config,
                                              bool with_counts);

/// Bounds-checked variant: malformed payloads (truncated varints, sizes not
/// a multiple of the entry width, trailing bytes) return Status::Corruption
/// instead of aborting. Used by the Status-propagating join pipelines.
Status TryDecodeTrackingMessage(const Message& message,
                                const JoinConfig& config, bool with_counts,
                                std::vector<TrackEntry>* out);

/// Sorts entries by (key, node) and merges duplicate (key, node) counts.
void MergeTrackEntries(std::vector<TrackEntry>* entries);

/// Iterates the distinct keys that have at least one R and one S entry,
/// building the per-key placement for the scheduler. Both entry vectors
/// must be merged (sorted by key, node). `width_r`/`width_s` are serialized
/// tuple widths in bytes (key + payload); byte totals are count × width.
/// Keys missing from either side are skipped — track join's built-in
/// perfect semi-join filtering.
class PlacementIterator {
 public:
  PlacementIterator(const std::vector<TrackEntry>& r_entries,
                    const std::vector<TrackEntry>& s_entries,
                    uint32_t width_r, uint32_t width_s, uint32_t tracker,
                    uint64_t msg_bytes);

  /// Advances to the next matched key. Returns false when exhausted.
  bool Next();

  uint64_t key() const { return key_; }
  const KeyPlacement& placement() const { return placement_; }

 private:
  const std::vector<TrackEntry>& r_entries_;
  const std::vector<TrackEntry>& s_entries_;
  uint32_t width_r_;
  uint32_t width_s_;
  size_t ri_ = 0;
  size_t si_ = 0;
  uint64_t key_ = 0;
  KeyPlacement placement_;
};

/// Serializes / parses <key, node> pair messages (location lists and
/// migration instructions). With cfg.group_locations the node-grouped
/// encoding of Section 2.4 is used.
ByteBuffer EncodeKeyNodePairs(const std::vector<KeyNodePair>& pairs,
                              const JoinConfig& config);
std::vector<KeyNodePair> DecodeKeyNodePairs(const Message& message,
                                            const JoinConfig& config);

/// Bounds-checked variant of DecodeKeyNodePairs: malformed payloads return
/// Status::Corruption instead of aborting.
Status TryDecodeKeyNodePairs(const Message& message, const JoinConfig& config,
                             std::vector<KeyNodePair>* out);

}  // namespace tj

#endif  // TJ_CORE_TRACKER_H_
