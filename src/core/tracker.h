// Tracking-phase message codecs and the tracker-side key table.
//
// Every node projects its table to distinct join keys (plus local counts in
// the 3-/4-phase versions) and ships them to the tracker responsible for
// each key: processT at hash(key) mod N. The tracker merges the incoming
// streams into per-key placements that the scheduler consumes.
#ifndef TJ_CORE_TRACKER_H_
#define TJ_CORE_TRACKER_H_

#include <cstdint>
#include <vector>

#include "core/join_types.h"
#include "core/schedule.h"
#include "encoding/node_group.h"
#include "exec/key_aggregate.h"
#include "net/buffer_pool.h"
#include "net/message.h"

namespace tj {

/// One tracker-side fact: node `node` holds `count` tuples of `key`.
struct TrackEntry {
  uint64_t key;
  uint32_t node;
  uint64_t count;

  bool operator==(const TrackEntry&) const = default;
};

/// Serializes one node's aggregated distinct keys into per-destination
/// tracking messages (destination = hash(key) mod num_nodes).
/// With `with_counts` false (2-phase), only keys travel; counts are implied 1
/// ("present"). Counts wider than cfg.count_bytes are split into saturated
/// chunks the tracker re-aggregates ("we can aggregate at the destination").
/// With cfg.delta_tracking, key streams are sorted+delta coded and counts
/// are LEB128.
/// When `pool` is non-null, per-destination buffers are acquired from it so
/// retired message capacity is reused across phases.
std::vector<ByteBuffer> EncodeTrackingMessages(
    const std::vector<KeyCount>& keys, const JoinConfig& config,
    bool with_counts, uint32_t num_nodes, BufferPool* pool = nullptr);

/// Parses one tracking message back into (key, src, count) entries.
/// Duplicate (key, node) chunks are NOT merged here; MergeTrackEntries does.
/// Aborts on malformed input; use the Try variant for untrusted bytes.
std::vector<TrackEntry> DecodeTrackingMessage(const Message& message,
                                              const JoinConfig& config,
                                              bool with_counts);

/// Bounds-checked variant: malformed payloads (truncated varints, sizes not
/// a multiple of the entry width, trailing bytes) return Status::Corruption
/// instead of aborting. Used by the Status-propagating join pipelines.
Status TryDecodeTrackingMessage(const Message& message,
                                const JoinConfig& config, bool with_counts,
                                std::vector<TrackEntry>* out);

/// Sorts entries by (key, node) and merges duplicate (key, node) counts.
/// Reference implementation: the streaming path (TryMergeTrackingMessages)
/// must produce byte-identical output; property tests cross-check the two.
void MergeTrackEntries(std::vector<TrackEntry>* entries);

/// Streaming cursor over the (key, node, count) facts of one tracking
/// message, decoded lazily in wire order. Init validates the whole payload
/// up front (same rejection set as TryDecodeTrackingMessage), so Next() is
/// infallible and the merge loop stays Status-free. Duplicate adjacent keys
/// (saturated count chunks) are NOT merged here; the k-way merge aggregates
/// them. The cursor borrows the message's bytes — the Message must outlive
/// it.
class TrackingMessageCursor {
 public:
  /// Validates `message` end to end and positions on the first entry.
  Status Init(const Message& message, const JoinConfig& config,
              bool with_counts);

  /// True when keys arrive non-decreasing. Delta streams are sorted by
  /// construction; plain streams are scanned during Init. Unsorted streams
  /// (legacy senders, adversarial input) must take the MergeTrackEntries
  /// reference path instead of the k-way merge.
  bool sorted() const { return sorted_; }
  /// Total entries in the message (before aggregation).
  uint64_t entries() const { return total_; }

  bool Valid() const { return remaining_ > 0; }
  uint64_t key() const { return key_; }
  uint32_t node() const { return node_; }
  uint64_t count() const { return count_; }
  /// Advances to the next wire entry. Valid() must be true.
  void Next();

 private:
  uint64_t ReadLeb(size_t* pos);
  uint64_t ReadUint(size_t* pos, uint32_t bytes);
  void DecodeHead();

  const uint8_t* data_ = nullptr;
  size_t key_pos_ = 0;    ///< Cursor into the key region.
  size_t count_pos_ = 0;  ///< Cursor into the trailing count region (delta).
  uint64_t remaining_ = 0;
  uint64_t total_ = 0;
  uint64_t key_ = 0;
  uint64_t count_ = 1;
  uint32_t node_ = 0;
  uint32_t key_bytes_ = 0;
  uint32_t count_bytes_ = 0;
  bool delta_ = false;
  bool with_counts_ = false;
  bool sorted_ = true;
};

/// Merges all tracking messages of one inbox into a merged (key, node)
/// entry vector in one pass: a loser-tree k-way merge over the per-source
/// sorted cursors, aggregating duplicate (key, node) runs as they surface.
/// O(n log k) with no intermediate concatenated vector and no comparison
/// sort. Output is byte-identical to decoding every message and running
/// MergeTrackEntries; if any stream is unsorted, that reference path is
/// taken automatically.
Status TryMergeTrackingMessages(const std::vector<Message>& messages,
                                const JoinConfig& config, bool with_counts,
                                std::vector<TrackEntry>* out);

/// Iterates the distinct keys that have at least one R and one S entry,
/// building the per-key placement for the scheduler. Both entry vectors
/// must be merged (sorted by key, node). `width_r`/`width_s` are serialized
/// tuple widths in bytes (key + payload); byte totals are count × width.
/// Keys missing from either side are skipped — track join's built-in
/// perfect semi-join filtering.
class PlacementIterator {
 public:
  PlacementIterator(const std::vector<TrackEntry>& r_entries,
                    const std::vector<TrackEntry>& s_entries,
                    uint32_t width_r, uint32_t width_s, uint32_t tracker,
                    uint64_t msg_bytes);

  /// Advances to the next matched key. Returns false when exhausted.
  bool Next();

  uint64_t key() const { return key_; }
  const KeyPlacement& placement() const { return placement_; }

  /// Total matching row counts of the current key, summed across nodes
  /// from the tracked per-node counts (the data heavy-hitter detection
  /// thresholds over — no extra wire traffic needed).
  uint64_t r_row_count() const { return r_rows_; }
  uint64_t s_row_count() const { return s_rows_; }

  /// True when r_row_count * s_row_count >= threshold, with the product
  /// saturating instead of wrapping on extreme skew.
  bool OutputProductAtLeast(uint64_t threshold) const;

 private:
  const std::vector<TrackEntry>& r_entries_;
  const std::vector<TrackEntry>& s_entries_;
  uint32_t width_r_;
  uint32_t width_s_;
  size_t ri_ = 0;
  size_t si_ = 0;
  uint64_t key_ = 0;
  uint64_t r_rows_ = 0;
  uint64_t s_rows_ = 0;
  KeyPlacement placement_;
};

/// One micro-batch slice of an entry-aligned wire stream (the pipelined
/// driver's unit of transfer). `watermark` is the last entry's key: for
/// key-sorted streams it promises "no later chunk of this stream carries a
/// key below the watermark" (saturated-count duplicates may carry a key
/// *equal* to it), which is what lets the tracker's frontier advance.
struct WireChunk {
  ByteBuffer data;
  uint64_t watermark = 0;
};

/// Slices a plain fixed-width entry stream (tracking entries, <key, node>
/// pairs) into chunks of at most `chunk_bytes`, cutting only at entry
/// boundaries; concatenating the chunks reproduces `message` byte for
/// byte. Each entry's leading `key_bytes` little-endian bytes are its key;
/// each chunk's watermark is its last entry's key. Preconditions:
/// 0 < key_bytes <= entry_bytes, message.size() % entry_bytes == 0.
/// Requires the plain wire format — delta-coded or node-grouped streams
/// carry cross-entry context and cannot be sliced.
std::vector<WireChunk> SliceEntryMessage(const ByteBuffer& message,
                                         uint32_t entry_bytes,
                                         uint32_t key_bytes,
                                         uint64_t chunk_bytes);

/// Serializes / parses <key, node> pair messages (location lists and
/// migration instructions). With cfg.group_locations the node-grouped
/// encoding of Section 2.4 is used.
ByteBuffer EncodeKeyNodePairs(const std::vector<KeyNodePair>& pairs,
                              const JoinConfig& config,
                              BufferPool* pool = nullptr);
std::vector<KeyNodePair> DecodeKeyNodePairs(const Message& message,
                                            const JoinConfig& config);

/// Bounds-checked variant of DecodeKeyNodePairs: malformed payloads return
/// Status::Corruption instead of aborting.
Status TryDecodeKeyNodePairs(const Message& message, const JoinConfig& config,
                             std::vector<KeyNodePair>* out);

}  // namespace tj

#endif  // TJ_CORE_TRACKER_H_
