// Tracking-aware (rid-based, late-materialized) hash join — paper §3.2.
//
// The strongest hash-join variant the paper constructs before proving that
// 2-phase track join subsumes it:
//   1. Both tables ship their key columns (in row order, so record ids stay
//      implicit) to hash-designated nodes.
//   2. The hash node joins keys and, instead of fetching both payloads,
//      migrates the result to where the *wider* tuple already lives: it
//      returns the wider side's rids to their home nodes and tells the
//      narrower side's rows where to go.
//   3. Narrower-side tuples travel (key + payload) to the wider tuples'
//      nodes and are re-joined there by key.
//
// Network cost ≈ (tR+tS)·wk + tRS·(min(wR,wS) + wk + rids) — compare
// RidTrackingHashJoinCost() in costmodel/network_cost.h.
#ifndef TJ_CORE_RID_HASH_JOIN_H_
#define TJ_CORE_RID_HASH_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

/// Runs the rid-based tracking-aware hash join. Local rids are
/// `rid_bytes`-wide in rid messages (default 4: "globally unique rids must
/// be at least 4 bytes", used here as local id + the implicit stream id).
///
/// Fails with Status::DataLoss / Status::Corruption (never aborts, never a
/// partial result) on unrecoverable faults under an active
/// config.fault_policy — see core/track_join.h.
Result<JoinResult> TryRunRidHashJoin(const PartitionedTable& r,
                                     const PartitionedTable& s,
                                     const JoinConfig& config,
                                     uint32_t rid_bytes = 4);

/// Infallible wrapper: aborts if the run fails.
JoinResult RunRidHashJoin(const PartitionedTable& r, const PartitionedTable& s,
                          const JoinConfig& config, uint32_t rid_bytes = 4);

}  // namespace tj

#endif  // TJ_CORE_RID_HASH_JOIN_H_
