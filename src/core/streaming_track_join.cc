#include "core/streaming_track_join.h"

#include <vector>

#include "common/flat_table.h"
#include "common/hash.h"
#include "common/logging.h"
#include "exec/local_join.h"
#include "net/buffer_pool.h"
#include "net/fabric.h"

namespace tj {

namespace {

/// Per-destination output stream that flushes to the fabric whenever the
/// buffer reaches the threshold — the bounded-memory batching a streaming
/// implementation uses.
class StreamWriter {
 public:
  /// `pool` (optional) recycles flushed-and-consumed buffers so steady-state
  /// streaming stops allocating per flush.
  StreamWriter(Fabric* fabric, uint32_t src, MessageType type,
               uint64_t flush_bytes, BufferPool* pool = nullptr)
      : fabric_(fabric),
        src_(src),
        type_(type),
        flush_bytes_(flush_bytes),
        pool_(pool),
        buffers_(fabric->num_nodes()) {}

  ~StreamWriter() { FlushAll(); }

  void PutEntry(uint32_t dst, uint64_t a, uint32_t a_bytes, uint64_t b = 0,
                uint32_t b_bytes = 0) {
    ByteWriter writer(&buffers_[dst]);
    writer.PutUint(a, a_bytes);
    if (b_bytes > 0) writer.PutUint(b, b_bytes);
    if (flush_bytes_ > 0 && buffers_[dst].size() >= flush_bytes_) Flush(dst);
  }

  void PutBytes(uint32_t dst, uint64_t key, uint32_t key_bytes,
                const uint8_t* payload, uint32_t payload_bytes) {
    ByteWriter writer(&buffers_[dst]);
    writer.PutUint(key, key_bytes);
    if (payload_bytes > 0) writer.PutBytes(payload, payload_bytes);
    if (flush_bytes_ > 0 && buffers_[dst].size() >= flush_bytes_) Flush(dst);
  }

  void FlushAll() {
    for (uint32_t dst = 0; dst < buffers_.size(); ++dst) Flush(dst);
  }

 private:
  void Flush(uint32_t dst) {
    if (buffers_[dst].empty()) return;
    fabric_->Send(src_, dst, type_, std::move(buffers_[dst]));
    // The moved-from buffer lost its capacity; restart from the pool so the
    // next batch reserves once instead of re-growing from zero.
    buffers_[dst] =
        pool_ != nullptr ? pool_->Acquire(flush_bytes_) : ByteBuffer{};
  }

  Fabric* fabric_;
  uint32_t src_;
  MessageType type_;
  uint64_t flush_bytes_;
  BufferPool* pool_;
  std::vector<ByteBuffer> buffers_;
};

/// Hash multimap from key to local row indexes (the paper's TR / TS).
/// Flat open-addressing: one contiguous slot array, no per-key heap node.
using RowIndex = FlatMap<std::vector<uint32_t>>;

}  // namespace

JoinResult RunStreamingTrackJoin2(const PartitionedTable& r,
                                  const PartitionedTable& s,
                                  const JoinConfig& config, Direction direction,
                                  uint64_t flush_bytes) {
  Result<JoinResult> result =
      TryRunStreamingTrackJoin2(r, s, config, direction, flush_bytes);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<JoinResult> TryRunStreamingTrackJoin2(const PartitionedTable& r,
                                             const PartitionedTable& s,
                                             const JoinConfig& config,
                                             Direction direction,
                                             uint64_t flush_bytes) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  TJ_RETURN_IF_ERROR(RequirePlainWireFormat(config, "streaming track join"));
  const uint32_t n = r.num_nodes();
  const bool r_to_s = direction == Direction::kRtoS;
  // B = broadcast side (tuples travel), T = target side (locations).
  const PartitionedTable& bcast = r_to_s ? r : s;
  const PartitionedTable& target = r_to_s ? s : r;
  const MessageType bcast_track = r_to_s ? MessageType::kTrackR
                                         : MessageType::kTrackS;
  const MessageType target_track = r_to_s ? MessageType::kTrackS
                                          : MessageType::kTrackR;
  const MessageType loc_type = r_to_s ? MessageType::kLocationsToR
                                      : MessageType::kLocationsToS;
  const MessageType data_type = r_to_s ? MessageType::kDataR
                                       : MessageType::kDataS;

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  if (config.fault_policy != nullptr) {
    fabric.SetFaultPolicy(*config.fault_policy, config.fault_seed);
  }
  fabric.SetPhaseDeadline(config.phase_deadline_seconds);
  fabric.SetDiagnosticsSink(config.diagnostics);
  std::vector<RowIndex> bcast_index(n), target_index(n);
  // Tracker state: per key, the nodes holding each side (paper's TR|S).
  std::vector<FlatMap<std::vector<uint32_t>>> track_bcast(n), track_target(n);
  // Per-node buffer pools (ownership rule: node i's phase work only touches
  // node i's pool) recycling consumed inbox payloads into stream writers.
  std::vector<BufferPool> pools(n);
  std::vector<TupleBlock> received(n, TupleBlock(bcast.payload_width()));
  std::vector<JoinChecksum> checksums(n);
  std::vector<uint64_t> outputs(n, 0);

  // Phase 1 (processR / processS first loop): stream the tables; each key
  // goes to its tracker the first time it is seen locally.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "stream & track keys", [&](uint32_t node) {
    auto track_side = [&](const TupleBlock& block, MessageType type,
                          RowIndex* index) {
      StreamWriter out(&fabric, node, type, flush_bytes, &pools[node]);
      index->Reserve(block.size());
      TJ_CHECK_LT(block.size(), (1ULL << 32));
      for (uint64_t row = 0; row < block.size(); ++row) {
        uint64_t key = block.Key(row);
        std::vector<uint32_t>& rows = (*index)[key];
        // First sighting of the key locally: tell its tracker.
        if (rows.empty()) {
          out.PutEntry(HashPartition(key, n), key, config.key_bytes);
        }
        rows.push_back(static_cast<uint32_t>(row));
      }
    };
    track_side(bcast.node(node), bcast_track, &bcast_index[node]);
    track_side(target.node(node), target_track, &target_index[node]);
    return Status::OK();
  }));

  // Phase 2 (processT): accumulate <key, node> facts, then stream the
  // target-side locations to every broadcast-side holder of the key.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "accumulate & send locations", [&](uint32_t node) -> Status {
    auto accumulate = [&](MessageType type, auto* table) -> Status {
      auto msgs = fabric.TakeInbox(node, type);
      for (const auto& msg : msgs) {
        ByteReader reader(msg.data);
        if (reader.remaining() % config.key_bytes != 0) {
          return Status::Corruption(
              "tracking stream not a multiple of key size");
        }
        // Each wire key is distinct per source, so the payload size bounds
        // the new-entry count exactly — one reserve, no mid-phase rehash.
        table->Reserve(table->size() + reader.remaining() / config.key_bytes);
        while (!reader.Done()) {
          (*table)[reader.GetUint(config.key_bytes)].push_back(msg.src);
        }
      }
      for (auto& msg : msgs) pools[node].Recycle(std::move(msg.data));
      return Status::OK();
    };
    TJ_RETURN_IF_ERROR(accumulate(bcast_track, &track_bcast[node]));
    TJ_RETURN_IF_ERROR(accumulate(target_track, &track_target[node]));

    StreamWriter out(&fabric, node, loc_type, flush_bytes, &pools[node]);
    track_bcast[node].ForEach(
        [&](uint64_t key, const std::vector<uint32_t>& bcast_nodes) {
          const std::vector<uint32_t>* targets = track_target[node].Find(key);
          if (targets == nullptr) return;  // No match: filtered.
          for (uint32_t b : bcast_nodes) {
            for (uint32_t t : *targets) {
              out.PutEntry(b, key, config.key_bytes, t, config.node_bytes);
            }
          }
        });
    return Status::OK();
  }));

  // Phase 3 (second loop of processR): selectively broadcast local tuples
  // to the tracked locations, streaming as pairs arrive.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "selective broadcast", [&](uint32_t node) -> Status {
    StreamWriter out(&fabric, node, data_type, flush_bytes, &pools[node]);
    const TupleBlock& block = bcast.node(node);
    auto loc_msgs = fabric.TakeInbox(node, loc_type);
    for (const auto& msg : loc_msgs) {
      ByteReader reader(msg.data);
      if (reader.remaining() % (config.key_bytes + config.node_bytes) != 0) {
        return Status::Corruption(
            "location stream not a multiple of pair size");
      }
      while (!reader.Done()) {
        uint64_t key = reader.GetUint(config.key_bytes);
        uint32_t dst = static_cast<uint32_t>(reader.GetUint(config.node_bytes));
        if (dst >= n) {
          return Status::Corruption("location names a node out of range");
        }
        const std::vector<uint32_t>* rows = bcast_index[node].Find(key);
        if (rows == nullptr) {
          // The tracker only learned this key from us; a location for a key
          // we never held means the schedule stream is corrupt.
          return Status::Corruption("location for a key this node never sent");
        }
        for (uint32_t row : *rows) {
          out.PutBytes(dst, key, config.key_bytes, block.Payload(row),
                       block.payload_width());
        }
      }
    }
    for (auto& msg : loc_msgs) pools[node].Recycle(std::move(msg.data));
    return Status::OK();
  }));

  // Phase 4 (second loop of processS): hash-join arriving tuples against
  // the local index — "for all <k, payloadS pS> in TS do commit".
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "commit joins", [&](uint32_t node) -> Status {
    const TupleBlock& local = target.node(node);
    auto data_msgs = fabric.TakeInbox(node, data_type);
    for (const auto& msg : data_msgs) {
      ByteReader reader(msg.data);
      received[node].Clear();
      TJ_RETURN_IF_ERROR(
          received[node].TryDeserializeRows(&reader, config.key_bytes));
      const TupleBlock& in = received[node];
      for (uint64_t row = 0; row < in.size(); ++row) {
        const std::vector<uint32_t>* local_rows =
            target_index[node].Find(in.Key(row));
        if (local_rows == nullptr) continue;
        for (uint32_t local_row : *local_rows) {
          const uint8_t* pr = r_to_s ? in.Payload(row) : local.Payload(local_row);
          const uint8_t* ps = r_to_s ? local.Payload(local_row) : in.Payload(row);
          checksums[node].Accumulate(in.Key(row), pr, r.payload_width(), ps,
                                     s.payload_width());
          ++outputs[node];
        }
      }
    }
    for (auto& msg : data_msgs) pools[node].Recycle(std::move(msg.data));
    return Status::OK();
  }));

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.reliability = fabric.reliability();
  result.profile = BuildStepProfile(
      direction == Direction::kRtoS ? "stj-r" : "stj-s", fabric);
  for (uint32_t node = 0; node < n; ++node) {
    result.output_rows += outputs[node];
    result.checksum.Merge(checksums[node]);
  }
  return result;
}

}  // namespace tj
