// Key aggregation: distinct join keys with local match counts.
//
// Track join's tracking phase sends, per node, each distinct local key
// (2-phase) or each distinct key plus its local count / total width
// (3-/4-phase). Aggregation runs over the sorted local block ("we sort both
// tables and aggregate the keys" — paper Table 4).
#ifndef TJ_EXEC_KEY_AGGREGATE_H_
#define TJ_EXEC_KEY_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "storage/tuple_block.h"

namespace tj {

/// A distinct key and how many local tuples carry it.
struct KeyCount {
  uint64_t key;
  uint64_t count;

  bool operator==(const KeyCount&) const = default;
};

/// Aggregates a block sorted by key. Precondition: IsSortedByKey(block).
std::vector<KeyCount> AggregateSortedKeys(const TupleBlock& block);

/// Aggregates an arbitrary block (sorts a key copy internally).
std::vector<KeyCount> AggregateKeys(const TupleBlock& block);

}  // namespace tj

#endif  // TJ_EXEC_KEY_AGGREGATE_H_
