#include "exec/radix_sort.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/trace.h"

namespace tj {

namespace {

constexpr uint64_t kInsertionSortThreshold = 48;
// A range at least this large histograms/scatters chunk-parallel and fans
// its bucket recursion out across the pool. Doubles as the skew guard: a
// heavy-hitter bucket above this size re-enters the parallel pass instead
// of serializing on one thread.
constexpr uint64_t kParallelSortThreshold = 1 << 15;
constexpr uint64_t kMinChunkRows = 1 << 13;

inline uint32_t Digit(uint64_t key, int shift) {
  return static_cast<uint32_t>(key >> shift) & 0xff;
}

// Stable: shifts only while strictly greater. With kHasValues false the
// value array is ignored (keys-only sort) and may be null.
template <bool kHasValues>
void InsertionSort(uint64_t* keys, uint32_t* values, uint64_t n) {
  for (uint64_t i = 1; i < n; ++i) {
    uint64_t k = keys[i];
    uint32_t v = kHasValues ? values[i] : 0;
    uint64_t j = i;
    while (j > 0 && keys[j - 1] > k) {
      keys[j] = keys[j - 1];
      if constexpr (kHasValues) values[j] = values[j - 1];
      --j;
    }
    keys[j] = k;
    if constexpr (kHasValues) values[j] = v;
  }
}

// Stable MSD radix sort of the `n` pairs currently held in (k, v), on the
// byte at `shift` and all bytes below. (ak, av) is equal-sized scratch.
// `k_is_final` says whether (k, v) is the caller-visible output range; the
// sorted pairs always end up in the final range. With kHasValues false, v
// and av are unused (keys-only sort, half the scatter bandwidth).
template <bool kHasValues>
void StableMsdSort(uint64_t* k, uint32_t* v, uint64_t* ak, uint32_t* av,
                   uint64_t n, int shift, bool k_is_final, ThreadPool* pool) {
  if (n <= kInsertionSortThreshold || shift < 0) {
    // shift < 0 means every byte was scattered already: the range holds one
    // repeated key and is trivially sorted.
    if (n > 1 && shift >= 0) InsertionSort<kHasValues>(k, v, n);
    if (!k_is_final) {
      std::memcpy(ak, k, n * sizeof(uint64_t));
      if constexpr (kHasValues) std::memcpy(av, v, n * sizeof(uint32_t));
    }
    return;
  }

  const bool parallel =
      pool != nullptr && pool->num_threads() > 1 && n >= kParallelSortThreshold;
  const uint64_t chunks =
      parallel ? std::min<uint64_t>(pool->num_threads() * 4, n / kMinChunkRows)
               : 1;
  const uint64_t rows_per_chunk = (n + chunks - 1) / chunks;

  // Pass 1: per-chunk digit histograms.
  std::vector<uint64_t> counts(chunks * 256, 0);
  auto histogram = [&](uint64_t c) {
    const uint64_t begin = c * rows_per_chunk;
    const uint64_t end = std::min(n, begin + rows_per_chunk);
    uint64_t* hist = counts.data() + c * 256;
    for (uint64_t i = begin; i < end; ++i) ++hist[Digit(k[i], shift)];
  };
  if (parallel) {
    pool->ParallelFor(chunks, [&](size_t c) { histogram(c); });
  } else {
    histogram(0);
  }

  // Bucket starts + chunk-major write cursors (stability: chunk c writes
  // into bucket d after chunks < c).
  uint64_t starts[257];
  uint64_t pos = 0;
  for (int d = 0; d < 256; ++d) {
    starts[d] = pos;
    for (uint64_t c = 0; c < chunks; ++c) {
      uint64_t cnt = counts[c * 256 + d];
      counts[c * 256 + d] = pos;
      pos += cnt;
    }
  }
  starts[256] = n;

  // Degenerate histogram (all n pairs share this byte — e.g. one dominant
  // key): skip the scatter and move straight to the next byte.
  uint64_t max_bucket = 0;
  for (int d = 0; d < 256; ++d) {
    max_bucket = std::max(max_bucket, starts[d + 1] - starts[d]);
  }
  if (max_bucket == n) {
    StableMsdSort<kHasValues>(k, v, ak, av, n, shift - 8, k_is_final, pool);
    return;
  }

  // Pass 2: stable scatter (k, v) -> (ak, av).
  auto scatter = [&](uint64_t c) {
    const uint64_t begin = c * rows_per_chunk;
    const uint64_t end = std::min(n, begin + rows_per_chunk);
    uint64_t* cursor = counts.data() + c * 256;
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t dst = cursor[Digit(k[i], shift)]++;
      ak[dst] = k[i];
      if constexpr (kHasValues) av[dst] = v[i];
    }
  };
  if (parallel) {
    pool->ParallelFor(chunks, [&](size_t c) { scatter(c); });
  } else {
    scatter(0);
  }

  // Recurse into the buckets on the next byte; data now lives in (ak, av).
  auto recurse = [&](int d) {
    const uint64_t b = starts[d];
    const uint64_t cnt = starts[d + 1] - b;
    if (cnt == 0) return;
    StableMsdSort<kHasValues>(ak + b, kHasValues ? av + b : nullptr, k + b,
                              kHasValues ? v + b : nullptr, cnt, shift - 8,
                              !k_is_final, pool);
  };
  if (parallel) {
    pool->ParallelFor(256, [&](size_t d) { recurse(static_cast<int>(d)); });
  } else {
    for (int d = 0; d < 256; ++d) recurse(d);
  }
}

}  // namespace

void RadixSortPairs(std::vector<uint64_t>* keys, std::vector<uint32_t>* values,
                    ThreadPool* pool) {
  TJ_CHECK_EQ(keys->size(), values->size());
  const uint64_t n = keys->size();
  if (n < 2) return;
  TraceSpan span("kernel", "RadixSortPairs", static_cast<int64_t>(n));
  // Skip leading all-zero bytes: start at the highest byte actually used.
  uint64_t max_key = *std::max_element(keys->begin(), keys->end());
  int shift = 0;
  while (shift < 56 && (max_key >> (shift + 8)) != 0) shift += 8;
  std::vector<uint64_t> scratch_keys(n);
  std::vector<uint32_t> scratch_values(n);
  StableMsdSort<true>(keys->data(), values->data(), scratch_keys.data(),
                      scratch_values.data(), n, shift, /*k_is_final=*/true,
                      pool);
}

void RadixSortKeys(std::vector<uint64_t>* keys, ThreadPool* pool) {
  const uint64_t n = keys->size();
  if (n < 2) return;
  TraceSpan span("kernel", "RadixSortKeys", static_cast<int64_t>(n));
  uint64_t max_key = *std::max_element(keys->begin(), keys->end());
  int shift = 0;
  while (shift < 56 && (max_key >> (shift + 8)) != 0) shift += 8;
  std::vector<uint64_t> scratch(n);
  StableMsdSort<false>(keys->data(), nullptr, scratch.data(), nullptr, n,
                       shift, /*k_is_final=*/true, pool);
}

void SortBlockByKey(TupleBlock* block, ThreadPool* pool) {
  if (block->size() < 2) return;
  TraceSpan span("kernel", "SortBlockByKey",
                 static_cast<int64_t>(block->size()));
  std::vector<uint64_t> keys = block->keys();
  std::vector<uint32_t> perm(keys.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  RadixSortPairs(&keys, &perm, pool);
  block->Permute(perm, pool);
}

bool IsSortedByKey(const TupleBlock& block) {
  const auto& keys = block.keys();
  for (uint64_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] > keys[i]) return false;
  }
  return true;
}

}  // namespace tj
