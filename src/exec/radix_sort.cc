#include "exec/radix_sort.h"

#include <algorithm>

#include "common/logging.h"

namespace tj {

namespace {

constexpr uint64_t kInsertionSortThreshold = 48;

inline uint32_t Digit(uint64_t key, int shift) {
  return static_cast<uint32_t>(key >> shift) & 0xff;
}

void InsertionSort(uint64_t* keys, uint32_t* values, uint64_t n) {
  for (uint64_t i = 1; i < n; ++i) {
    uint64_t k = keys[i];
    uint32_t v = values[i];
    uint64_t j = i;
    while (j > 0 && keys[j - 1] > k) {
      keys[j] = keys[j - 1];
      values[j] = values[j - 1];
      --j;
    }
    keys[j] = k;
    values[j] = v;
  }
}

// In-place MSD radix sort (American-flag style) on the byte at `shift`.
void MsdRadixSort(uint64_t* keys, uint32_t* values, uint64_t n, int shift) {
  if (n <= kInsertionSortThreshold) {
    InsertionSort(keys, values, n);
    return;
  }
  uint64_t counts[256] = {0};
  for (uint64_t i = 0; i < n; ++i) ++counts[Digit(keys[i], shift)];

  uint64_t starts[256];
  uint64_t ends[256];
  uint64_t pos = 0;
  for (int d = 0; d < 256; ++d) {
    starts[d] = pos;
    pos += counts[d];
    ends[d] = pos;
  }

  // Permute in place: cycle elements into their buckets.
  uint64_t heads[256];
  std::copy(starts, starts + 256, heads);
  for (int d = 0; d < 256; ++d) {
    uint64_t i = heads[d];
    while (i < ends[d]) {
      uint32_t digit = Digit(keys[i], shift);
      if (digit == static_cast<uint32_t>(d)) {
        ++i;
        ++heads[d];
      } else {
        uint64_t target = heads[digit]++;
        std::swap(keys[i], keys[target]);
        std::swap(values[i], values[target]);
      }
    }
  }

  if (shift > 0) {
    for (int d = 0; d < 256; ++d) {
      if (counts[d] > 1) {
        MsdRadixSort(keys + starts[d], values + starts[d], counts[d], shift - 8);
      }
    }
  }
}

}  // namespace

void RadixSortPairs(std::vector<uint64_t>* keys, std::vector<uint32_t>* values) {
  TJ_CHECK_EQ(keys->size(), values->size());
  if (keys->size() < 2) return;
  // Skip leading all-zero bytes: start at the highest byte actually used.
  uint64_t max_key = *std::max_element(keys->begin(), keys->end());
  int shift = 0;
  while (shift < 56 && (max_key >> (shift + 8)) != 0) shift += 8;
  MsdRadixSort(keys->data(), values->data(), keys->size(), shift);
}

void SortBlockByKey(TupleBlock* block) {
  if (block->size() < 2) return;
  if (block->payload_width() == 0) {
    std::vector<uint64_t> keys = block->keys();
    std::vector<uint32_t> perm(keys.size());
    for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
    RadixSortPairs(&keys, &perm);
    block->Permute(perm);
    return;
  }
  std::vector<uint64_t> keys = block->keys();
  std::vector<uint32_t> perm(keys.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  RadixSortPairs(&keys, &perm);
  block->Permute(perm);
}

bool IsSortedByKey(const TupleBlock& block) {
  const auto& keys = block.keys();
  for (uint64_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] > keys[i]) return false;
  }
  return true;
}

}  // namespace tj
