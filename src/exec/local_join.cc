#include "exec/local_join.h"

#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "common/hash.h"
#include "exec/radix_sort.h"
#include "obs/trace.h"

namespace tj {

uint64_t MergeJoinSorted(const TupleBlock& r, const TupleBlock& s,
                         const JoinSink& sink) {
  TraceSpan span("kernel", "MergeJoinSorted",
                 static_cast<int64_t>(r.size() + s.size()));
  uint64_t output = 0;
  uint64_t i = 0, j = 0;
  const uint64_t nr = r.size(), ns = s.size();
  while (i < nr && j < ns) {
    uint64_t kr = r.Key(i);
    uint64_t ks = s.Key(j);
    if (kr < ks) {
      ++i;
    } else if (kr > ks) {
      ++j;
    } else {
      // Matching runs: emit the cartesian product of equal-key tuples.
      uint64_t i_end = i;
      while (i_end < nr && r.Key(i_end) == kr) ++i_end;
      uint64_t j_end = j;
      while (j_end < ns && s.Key(j_end) == kr) ++j_end;
      for (uint64_t a = i; a < i_end; ++a) {
        for (uint64_t b = j; b < j_end; ++b) {
          if (sink) sink(kr, r.Payload(a), s.Payload(b));
          ++output;
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return output;
}

uint64_t SortMergeJoin(TupleBlock* r, TupleBlock* s, const JoinSink& sink,
                       ThreadPool* pool) {
  if (!IsSortedByKey(*r)) SortBlockByKey(r, pool);
  if (!IsSortedByKey(*s)) SortBlockByKey(s, pool);
  return MergeJoinSorted(*r, *s, sink);
}

uint64_t HashTableJoin(const TupleBlock& r, const TupleBlock& s,
                       const JoinSink& sink) {
  if (r.empty() || s.empty()) return 0;
  TraceSpan span("kernel", "HashTableJoin",
                 static_cast<int64_t>(r.size() + s.size()));
  // Open-addressing table of row indexes into r, chained by probing: equal
  // keys occupy consecutive probe positions.
  const uint64_t capacity = NextPowerOfTwo(r.size() * 2);
  const uint64_t mask = capacity - 1;
  constexpr uint32_t kEmpty = ~0u;
  std::vector<uint32_t> slots(capacity, kEmpty);
  TJ_CHECK_LT(r.size(), static_cast<uint64_t>(kEmpty));
  for (uint64_t row = 0; row < r.size(); ++row) {
    uint64_t pos = HashKey(r.Key(row)) & mask;
    while (slots[pos] != kEmpty) pos = (pos + 1) & mask;
    slots[pos] = static_cast<uint32_t>(row);
  }
  uint64_t output = 0;
  for (uint64_t row = 0; row < s.size(); ++row) {
    uint64_t key = s.Key(row);
    uint64_t pos = HashKey(key) & mask;
    while (slots[pos] != kEmpty) {
      uint32_t r_row = slots[pos];
      if (r.Key(r_row) == key) {
        if (sink) sink(key, r.Payload(r_row), s.Payload(row));
        ++output;
      }
      pos = (pos + 1) & mask;
    }
  }
  return output;
}

JoinSink ChecksumSink(JoinChecksum* checksum, uint32_t width_r,
                      uint32_t width_s) {
  return [checksum, width_r, width_s](uint64_t key, const uint8_t* pr,
                                      const uint8_t* ps) {
    checksum->Accumulate(key, pr, width_r, ps, width_s);
  };
}

JoinSink MaterializeSink(TupleBlock* out, JoinChecksum* checksum,
                         uint32_t width_r, uint32_t width_s) {
  TJ_CHECK_EQ(out->payload_width(), width_r + width_s);
  return [out, checksum, width_r, width_s,
          scratch = std::vector<uint8_t>(width_r + width_s)](
             uint64_t key, const uint8_t* pr, const uint8_t* ps) mutable {
    checksum->Accumulate(key, pr, width_r, ps, width_s);
    if (width_r > 0) std::memcpy(scratch.data(), pr, width_r);
    if (width_s > 0) std::memcpy(scratch.data() + width_r, ps, width_s);
    out->Append(key, scratch.data());
  };
}

}  // namespace tj
