// Hash partitioning of tuple blocks across nodes.
//
// The partition step of Grace hash join and of track join's tracking phase:
// destination node = hash(key) mod N (common/hash.h HashPartition).
#ifndef TJ_EXEC_PARTITION_H_
#define TJ_EXEC_PARTITION_H_

#include <cstdint>
#include <vector>

#include "storage/tuple_block.h"

namespace tj {

/// Splits `block` into `num_parts` blocks by hash of key.
std::vector<TupleBlock> HashPartitionBlock(const TupleBlock& block,
                                           uint32_t num_parts);

/// Row indexes of `block` destined for each partition (no copying).
std::vector<std::vector<uint32_t>> HashPartitionIndexes(const TupleBlock& block,
                                                        uint32_t num_parts);

}  // namespace tj

#endif  // TJ_EXEC_PARTITION_H_
