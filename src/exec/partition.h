// Hash partitioning of tuple blocks across nodes.
//
// The partition step of Grace hash join and of track join's tracking phase:
// destination node = hash(key) mod N (common/hash.h HashPartition).
//
// The workhorse is a two-pass histogram-based radix partitioner
// (paper Section 4.2: the local steps of Tables 3/4 are dominated by
// partitioning and MSB radix sort): pass 1 builds per-chunk histograms of
// partition destinations, an exclusive prefix sum turns them into write
// cursors, and pass 2 scatters tuples through software write-combining
// buffers into contiguous per-partition runs. Both passes parallelize over
// input chunks on a ThreadPool; because the cursor math is chunk-major the
// output layout is *stable* (input order preserved inside each partition)
// and therefore bit-identical for every thread count, including none.
// Heavy-hitter (skewed) partitions cost nothing extra: work is split by
// input chunk, not by partition, so a partition receiving most of the
// input is still written by all threads in parallel.
#ifndef TJ_EXEC_PARTITION_H_
#define TJ_EXEC_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/tuple_block.h"

namespace tj {

/// Contiguous per-partition tuple runs: partition p's tuples occupy rows
/// [bounds[p], bounds[p+1]) of `tuples`, in input order.
struct PartitionLayout {
  TupleBlock tuples;
  std::vector<uint64_t> bounds;  // num_parts + 1 entries

  uint32_t num_parts() const {
    return bounds.empty() ? 0 : static_cast<uint32_t>(bounds.size() - 1);
  }
  uint64_t Begin(uint32_t p) const { return bounds[p]; }
  uint64_t End(uint32_t p) const { return bounds[p + 1]; }
  uint64_t Size(uint32_t p) const { return bounds[p + 1] - bounds[p]; }
};

/// Key-column variant for the rid/late joins, which ship key streams and
/// refer to payloads by position later: partition p's keys occupy
/// [bounds[p], bounds[p+1]) of `keys`, and row_ids[i] is the original row
/// of keys[i].
struct KeyPartitionLayout {
  std::vector<uint64_t> keys;
  std::vector<uint32_t> row_ids;
  std::vector<uint64_t> bounds;  // num_parts + 1 entries

  uint64_t Begin(uint32_t p) const { return bounds[p]; }
  uint64_t End(uint32_t p) const { return bounds[p + 1]; }
  uint64_t Size(uint32_t p) const { return bounds[p + 1] - bounds[p]; }
};

/// Two-pass parallel radix partition of `block` into `num_parts` contiguous
/// runs by hash of key. Stable: identical output for every thread count.
/// Fails with InvalidArgument when num_parts == 0.
Result<PartitionLayout> TryRadixPartition(const TupleBlock& block,
                                          uint32_t num_parts,
                                          ThreadPool* pool = nullptr);

/// Key-column variant: partitions only keys + original row ids (no payload
/// movement). Fails with InvalidArgument when num_parts == 0 and with
/// OutOfRange when the block has >= 2^32 rows (row ids are 32-bit).
Result<KeyPartitionLayout> TryRadixPartitionKeys(const TupleBlock& block,
                                                 uint32_t num_parts,
                                                 ThreadPool* pool = nullptr);

/// Infallible wrapper: aborts on error.
PartitionLayout RadixPartition(const TupleBlock& block, uint32_t num_parts,
                               ThreadPool* pool = nullptr);

/// Skew guard: indexes of partitions holding more than `factor` times the
/// mean partition size (from a layout's bounds). The radix kernels split
/// such partitions' work across threads by input chunk; callers that
/// process per-partition can use this to subdivide heavy partitions.
std::vector<uint32_t> HeavyPartitions(const std::vector<uint64_t>& bounds,
                                      double factor);

/// Splits `block` into `num_parts` blocks by hash of key.
/// (Compatibility wrapper over TryRadixPartition; aborts on num_parts == 0.)
std::vector<TupleBlock> HashPartitionBlock(const TupleBlock& block,
                                           uint32_t num_parts);

/// Row indexes of `block` destined for each partition (no copying).
/// (Compatibility wrapper over TryRadixPartitionKeys.)
std::vector<std::vector<uint32_t>> HashPartitionIndexes(const TupleBlock& block,
                                                        uint32_t num_parts);

/// Status-returning variant of HashPartitionIndexes: InvalidArgument when
/// num_parts == 0, OutOfRange when the block has >= 2^32 rows.
Result<std::vector<std::vector<uint32_t>>> TryHashPartitionIndexes(
    const TupleBlock& block, uint32_t num_parts, ThreadPool* pool = nullptr);

}  // namespace tj

#endif  // TJ_EXEC_PARTITION_H_
