#include "exec/partition.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace tj {

namespace {

// Chunking grain for the parallel passes. Chunk boundaries never affect the
// output (the prefix-sum cursors are chunk-major, so the layout is stable
// regardless of how the input is carved up) — only load balance.
constexpr uint64_t kMinChunkRows = 1 << 13;

// Software write-combining: tuples are staged in small per-partition
// buffers and flushed as contiguous runs, so the scatter's random writes
// hit the staging buffer (cache-resident) instead of num_parts distant
// output cursors per tuple.
constexpr uint64_t kSwcBufferBytes = 2048;

uint64_t NumChunks(uint64_t n, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2 * kMinChunkRows) {
    return 1;
  }
  return std::min<uint64_t>(pool->num_threads() * 4, n / kMinChunkRows);
}

void RunChunks(uint64_t chunks, ThreadPool* pool,
               const std::function<void(uint64_t)>& fn) {
  if (chunks <= 1 || pool == nullptr) {
    for (uint64_t c = 0; c < chunks; ++c) fn(c);
  } else {
    pool->ParallelFor(chunks, [&fn](size_t c) { fn(c); });
  }
}

// Pass 1 + prefix sums, shared by both partitioners. Fills `bounds`
// (num_parts + 1), `cursors` (chunks x num_parts write positions) and
// `part_ids` (per-row partition, so the scatter pass never re-hashes —
// HashPartition's modulo is an integer division, twice the cost of
// re-reading 4 sequential bytes per row).
void BuildHistograms(const TupleBlock& block, uint32_t num_parts,
                     uint64_t chunks, uint64_t rows_per_chunk,
                     ThreadPool* pool, std::vector<uint64_t>* bounds,
                     std::vector<uint64_t>* cursors,
                     std::vector<uint32_t>* part_ids) {
  const uint64_t n = block.size();
  std::vector<uint64_t>& counts = *cursors;  // reused in place as cursors
  counts.assign(chunks * num_parts, 0);
  part_ids->resize(n);
  uint32_t* ids = part_ids->data();
  RunChunks(chunks, pool, [&](uint64_t c) {
    const uint64_t begin = c * rows_per_chunk;
    const uint64_t end = std::min(n, begin + rows_per_chunk);
    uint64_t* hist = counts.data() + c * num_parts;
    for (uint64_t row = begin; row < end; ++row) {
      const uint32_t p = HashPartition(block.Key(row), num_parts);
      ids[row] = p;
      ++hist[p];
    }
  });

  // Exclusive prefix sum in (partition, chunk) order: partition p's run
  // starts at bounds[p]; within it, chunk c writes after chunks < c.
  bounds->assign(num_parts + 1, 0);
  uint64_t pos = 0;
  for (uint32_t p = 0; p < num_parts; ++p) {
    (*bounds)[p] = pos;
    for (uint64_t c = 0; c < chunks; ++c) {
      uint64_t cnt = counts[c * num_parts + p];
      counts[c * num_parts + p] = pos;
      pos += cnt;
    }
  }
  (*bounds)[num_parts] = pos;
}

}  // namespace

Result<PartitionLayout> TryRadixPartition(const TupleBlock& block,
                                          uint32_t num_parts,
                                          ThreadPool* pool) {
  if (num_parts == 0) {
    return Status::InvalidArgument("partition count must be positive");
  }
  const uint64_t n = block.size();
  const uint32_t width = block.payload_width();
  TraceSpan span("kernel", "TryRadixPartition", static_cast<int64_t>(n));

  PartitionLayout layout;
  layout.tuples = TupleBlock(width);
  if (n == 0) {
    layout.bounds.assign(num_parts + 1, 0);
    return layout;
  }

  const uint64_t chunks = NumChunks(n, pool);
  const uint64_t rows_per_chunk = (n + chunks - 1) / chunks;
  std::vector<uint64_t> cursors;
  std::vector<uint32_t> part_ids;
  BuildHistograms(block, num_parts, chunks, rows_per_chunk, pool,
                  &layout.bounds, &cursors, &part_ids);

  layout.tuples.Resize(n);
  uint64_t* out_keys = layout.tuples.MutableKeys();
  uint8_t* out_pay = layout.tuples.MutablePayloads();
  const uint64_t row_bytes = 8 + width;
  const uint64_t buf_rows = std::max<uint64_t>(1, kSwcBufferBytes / row_bytes);

  RunChunks(chunks, pool, [&](uint64_t c) {
    const uint64_t begin = c * rows_per_chunk;
    const uint64_t end = std::min(n, begin + rows_per_chunk);
    uint64_t* cursor = cursors.data() + c * num_parts;

    // Per-chunk write-combining buffers: buf_rows staged tuples per
    // partition, flushed as one contiguous run.
    std::vector<uint64_t> buf_keys(num_parts * buf_rows);
    std::vector<uint8_t> buf_pay(width > 0 ? num_parts * buf_rows * width : 0);
    std::vector<uint32_t> buf_fill(num_parts, 0);

    auto flush = [&](uint32_t p) {
      const uint32_t cnt = buf_fill[p];
      if (cnt == 0) return;
      uint64_t dst = cursor[p];
      std::memcpy(out_keys + dst, buf_keys.data() + p * buf_rows,
                  cnt * sizeof(uint64_t));
      if (width > 0) {
        std::memcpy(out_pay + dst * width, buf_pay.data() + p * buf_rows * width,
                    static_cast<uint64_t>(cnt) * width);
      }
      cursor[p] = dst + cnt;
      buf_fill[p] = 0;
    };

    for (uint64_t row = begin; row < end; ++row) {
      const uint64_t key = block.Key(row);
      const uint32_t p = part_ids[row];
      uint32_t fill = buf_fill[p];
      buf_keys[p * buf_rows + fill] = key;
      if (width > 0) {
        std::memcpy(buf_pay.data() + (p * buf_rows + fill) * width,
                    block.Payload(row), width);
      }
      buf_fill[p] = fill + 1;
      if (fill + 1 == buf_rows) flush(p);
    }
    for (uint32_t p = 0; p < num_parts; ++p) flush(p);
  });
  return layout;
}

Result<KeyPartitionLayout> TryRadixPartitionKeys(const TupleBlock& block,
                                                 uint32_t num_parts,
                                                 ThreadPool* pool) {
  if (num_parts == 0) {
    return Status::InvalidArgument("partition count must be positive");
  }
  const uint64_t n = block.size();
  if (n >= (1ULL << 32)) {
    return Status::OutOfRange("block too large for 32-bit row ids");
  }
  TraceSpan span("kernel", "TryRadixPartitionKeys", static_cast<int64_t>(n));

  KeyPartitionLayout layout;
  if (n == 0) {
    layout.bounds.assign(num_parts + 1, 0);
    return layout;
  }

  const uint64_t chunks = NumChunks(n, pool);
  const uint64_t rows_per_chunk = (n + chunks - 1) / chunks;
  std::vector<uint64_t> cursors;
  std::vector<uint32_t> part_ids;
  BuildHistograms(block, num_parts, chunks, rows_per_chunk, pool,
                  &layout.bounds, &cursors, &part_ids);

  layout.keys.resize(n);
  layout.row_ids.resize(n);
  RunChunks(chunks, pool, [&](uint64_t c) {
    const uint64_t begin = c * rows_per_chunk;
    const uint64_t end = std::min(n, begin + rows_per_chunk);
    uint64_t* cursor = cursors.data() + c * num_parts;
    for (uint64_t row = begin; row < end; ++row) {
      const uint64_t key = block.Key(row);
      const uint32_t p = part_ids[row];
      const uint64_t dst = cursor[p]++;
      layout.keys[dst] = key;
      layout.row_ids[dst] = static_cast<uint32_t>(row);
    }
  });
  return layout;
}

PartitionLayout RadixPartition(const TupleBlock& block, uint32_t num_parts,
                               ThreadPool* pool) {
  Result<PartitionLayout> result = TryRadixPartition(block, num_parts, pool);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<uint32_t> HeavyPartitions(const std::vector<uint64_t>& bounds,
                                      double factor) {
  std::vector<uint32_t> heavy;
  if (bounds.size() < 2) return heavy;
  const uint32_t parts = static_cast<uint32_t>(bounds.size() - 1);
  const double mean = static_cast<double>(bounds[parts]) / parts;
  for (uint32_t p = 0; p < parts; ++p) {
    if (static_cast<double>(bounds[p + 1] - bounds[p]) > factor * mean) {
      heavy.push_back(p);
    }
  }
  return heavy;
}

std::vector<TupleBlock> HashPartitionBlock(const TupleBlock& block,
                                           uint32_t num_parts) {
  Result<PartitionLayout> result = TryRadixPartition(block, num_parts);
  TJ_CHECK(result.ok()) << result.status().ToString();
  PartitionLayout& layout = result.value();
  std::vector<TupleBlock> parts;
  parts.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    TupleBlock part(block.payload_width());
    part.Reserve(layout.Size(p));
    for (uint64_t row = layout.Begin(p); row < layout.End(p); ++row) {
      part.AppendFrom(layout.tuples, row);
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

Result<std::vector<std::vector<uint32_t>>> TryHashPartitionIndexes(
    const TupleBlock& block, uint32_t num_parts, ThreadPool* pool) {
  Result<KeyPartitionLayout> result =
      TryRadixPartitionKeys(block, num_parts, pool);
  if (!result.ok()) return result.status();
  const KeyPartitionLayout& layout = result.value();
  std::vector<std::vector<uint32_t>> indexes(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    indexes[p].assign(layout.row_ids.begin() + layout.Begin(p),
                      layout.row_ids.begin() + layout.End(p));
  }
  return indexes;
}

std::vector<std::vector<uint32_t>> HashPartitionIndexes(const TupleBlock& block,
                                                        uint32_t num_parts) {
  Result<std::vector<std::vector<uint32_t>>> result =
      TryHashPartitionIndexes(block, num_parts);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace tj
