#include "exec/partition.h"

#include "common/hash.h"
#include "common/logging.h"

namespace tj {

std::vector<TupleBlock> HashPartitionBlock(const TupleBlock& block,
                                           uint32_t num_parts) {
  TJ_CHECK_GT(num_parts, 0u);
  std::vector<TupleBlock> parts;
  parts.reserve(num_parts);
  for (uint32_t i = 0; i < num_parts; ++i) {
    parts.emplace_back(block.payload_width());
  }
  for (uint64_t row = 0; row < block.size(); ++row) {
    parts[HashPartition(block.Key(row), num_parts)].AppendFrom(block, row);
  }
  return parts;
}

std::vector<std::vector<uint32_t>> HashPartitionIndexes(const TupleBlock& block,
                                                        uint32_t num_parts) {
  TJ_CHECK_GT(num_parts, 0u);
  TJ_CHECK_LT(block.size(), (1ULL << 32));
  std::vector<std::vector<uint32_t>> indexes(num_parts);
  for (uint64_t row = 0; row < block.size(); ++row) {
    indexes[HashPartition(block.Key(row), num_parts)].push_back(
        static_cast<uint32_t>(row));
  }
  return indexes;
}

}  // namespace tj
