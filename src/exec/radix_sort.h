// MSB radix sort of tuple blocks by join key.
//
// The paper's implementation uses sort-merge-join with MSB radix sort for
// all local joins (Section 4.2, Tables 3/4). Sorting also enables key
// aggregation (distinct key + count) and the delta/prefix compression of
// Section 2.4.
//
// The sort is a multi-pass MSB radix sort with TLB-friendly 8-bit digits:
// each pass is a stable two-pass histogram scatter (counting sort) between
// a primary and a scratch buffer, recursing into the 256 buckets on the
// next byte; small buckets finish with (stable) insertion sort. Given a
// ThreadPool, large ranges histogram and scatter chunk-parallel, and the
// bucket recursion fans out across the pool with a skew guard: a
// heavy-hitter bucket (e.g. a single dominant key prefix) re-enters the
// parallel pass instead of serializing on one thread. Every path is
// stable, so the sorted output — including the payload order of duplicate
// keys — is bit-identical for every thread count, including no pool.
#ifndef TJ_EXEC_RADIX_SORT_H_
#define TJ_EXEC_RADIX_SORT_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "storage/tuple_block.h"

namespace tj {

/// Sorts `keys` ascending with MSB (most-significant-byte first) radix sort,
/// applying identical moves to the parallel `values` array. Stable: equal
/// keys keep their input order. With a pool, large inputs sort in parallel
/// (same output).
/// Precondition: keys.size() == values.size().
void RadixSortPairs(std::vector<uint64_t>* keys, std::vector<uint32_t>* values,
                    ThreadPool* pool = nullptr);

/// Keys-only variant: same MSB radix sort without a value array (half the
/// scatter bandwidth). Used by key aggregation, where only the sorted key
/// multiset matters.
void RadixSortKeys(std::vector<uint64_t>* keys, ThreadPool* pool = nullptr);

/// Sorts the block's rows by key ascending (payloads move with their keys).
/// Stable; with a pool the sort and payload gather run in parallel.
void SortBlockByKey(TupleBlock* block, ThreadPool* pool = nullptr);

/// True if the block's keys are non-decreasing.
bool IsSortedByKey(const TupleBlock& block);

}  // namespace tj

#endif  // TJ_EXEC_RADIX_SORT_H_
