// MSB radix sort of tuple blocks by join key.
//
// The paper's implementation uses sort-merge-join with MSB radix sort for
// all local joins (Section 4.2, Tables 3/4). Sorting also enables key
// aggregation (distinct key + count) and the delta/prefix compression of
// Section 2.4.
#ifndef TJ_EXEC_RADIX_SORT_H_
#define TJ_EXEC_RADIX_SORT_H_

#include <cstdint>
#include <vector>

#include "storage/tuple_block.h"

namespace tj {

/// Sorts `keys` ascending with MSB (most-significant-byte first) radix sort,
/// applying identical moves to the parallel `values` array.
/// Precondition: keys.size() == values.size().
void RadixSortPairs(std::vector<uint64_t>* keys, std::vector<uint32_t>* values);

/// Sorts the block's rows by key ascending (payloads move with their keys).
void SortBlockByKey(TupleBlock* block);

/// True if the block's keys are non-decreasing.
bool IsSortedByKey(const TupleBlock& block);

}  // namespace tj

#endif  // TJ_EXEC_RADIX_SORT_H_
