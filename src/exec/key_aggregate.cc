#include "exec/key_aggregate.h"

#include "common/logging.h"
#include "exec/radix_sort.h"

namespace tj {

std::vector<KeyCount> AggregateSortedKeys(const TupleBlock& block) {
  std::vector<KeyCount> out;
  const auto& keys = block.keys();
  uint64_t i = 0;
  while (i < keys.size()) {
    uint64_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    TJ_CHECK(j == keys.size() || keys[j] > keys[i]);  // Sorted input required.
    out.push_back(KeyCount{keys[i], j - i});
    i = j;
  }
  return out;
}

std::vector<KeyCount> AggregateKeys(const TupleBlock& block) {
  std::vector<uint64_t> keys = block.keys();
  RadixSortKeys(&keys);
  std::vector<KeyCount> out;
  uint64_t i = 0;
  while (i < keys.size()) {
    uint64_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    out.push_back(KeyCount{keys[i], j - i});
    i = j;
  }
  return out;
}

}  // namespace tj
