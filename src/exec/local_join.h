// Node-local join machinery: sort-merge join and hash-table join.
//
// After an algorithm has routed tuples, every node joins its local R block
// against its local S block. The paper uses sort-merge join (MSB radix
// sort); a linear-probing hash join is provided as an alternative and for
// cross-checking results.
#ifndef TJ_EXEC_LOCAL_JOIN_H_
#define TJ_EXEC_LOCAL_JOIN_H_

#include <cstdint>
#include <functional>

#include "storage/table.h"
#include "storage/tuple_block.h"

namespace tj {

/// Receives each joined output tuple.
using JoinSink =
    std::function<void(uint64_t key, const uint8_t* payload_r,
                       const uint8_t* payload_s)>;

/// Sort-merge join of two blocks (sorts them in place if needed, in
/// parallel when given a pool), invoking `sink` once per output tuple.
/// Returns the output cardinality.
uint64_t SortMergeJoin(TupleBlock* r, TupleBlock* s, const JoinSink& sink,
                       class ThreadPool* pool = nullptr);

/// Merge join over already-sorted blocks. Precondition: both sorted by key.
uint64_t MergeJoinSorted(const TupleBlock& r, const TupleBlock& s,
                         const JoinSink& sink);

/// Hash join: builds a linear-probing table on `r`, probes with `s`.
uint64_t HashTableJoin(const TupleBlock& r, const TupleBlock& s,
                       const JoinSink& sink);

/// Convenience sink: accumulate the order-independent output checksum.
JoinSink ChecksumSink(JoinChecksum* checksum, uint32_t width_r,
                      uint32_t width_s);

/// Sink that both checksums and materializes: appends one
/// <key | payloadR | payloadS> row to `out` per joined pair.
/// Precondition: out->payload_width() == width_r + width_s.
JoinSink MaterializeSink(TupleBlock* out, JoinChecksum* checksum,
                         uint32_t width_r, uint32_t width_s);

}  // namespace tj

#endif  // TJ_EXEC_LOCAL_JOIN_H_
