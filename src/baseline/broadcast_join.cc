#include "baseline/broadcast_join.h"

#include <vector>

#include "common/logging.h"
#include "exec/local_join.h"
#include "exec/radix_sort.h"
#include "net/fabric.h"

namespace tj {

JoinResult RunBroadcastJoin(const PartitionedTable& r,
                            const PartitionedTable& s,
                            const JoinConfig& config, Direction direction) {
  Result<JoinResult> result = TryRunBroadcastJoin(r, s, config, direction);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<JoinResult> TryRunBroadcastJoin(const PartitionedTable& r,
                                       const PartitionedTable& s,
                                       const JoinConfig& config,
                                       Direction direction) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();
  const bool broadcast_r = direction == Direction::kRtoS;
  const PartitionedTable& moving = broadcast_r ? r : s;
  const PartitionedTable& fixed = broadcast_r ? s : r;
  const MessageType data_type =
      broadcast_r ? MessageType::kDataR : MessageType::kDataS;

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  if (config.fault_policy != nullptr) {
    fabric.SetFaultPolicy(*config.fault_policy, config.fault_seed);
  }
  fabric.SetPhaseDeadline(config.phase_deadline_seconds);
  fabric.SetDiagnosticsSink(config.diagnostics);
  std::vector<TupleBlock> moving_in(n, TupleBlock(moving.payload_width()));
  std::vector<TupleBlock> fixed_local(n, TupleBlock(fixed.payload_width()));
  std::vector<JoinChecksum> checksums(n);
  std::vector<uint64_t> outputs(n, 0);

  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "broadcast tuples", [&](uint32_t node) {
        const TupleBlock& block = moving.node(node);
        if (block.empty()) return Status::OK();
        ByteBuffer buf;
        block.SerializeRows(0, block.size(), config.key_bytes, &buf);
        for (uint32_t dst = 0; dst < n; ++dst) {
          // Self-delivery is a free local copy; remote copies are network.
          ByteBuffer copy = (dst + 1 == n) ? std::move(buf) : buf;
          fabric.Send(node, dst, data_type, std::move(copy));
        }
        return Status::OK();
      }));

  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "sort tuples", [&](uint32_t node) -> Status {
        for (const auto& msg : fabric.TakeInbox(node, data_type)) {
          ByteReader reader(msg.data);
          TJ_RETURN_IF_ERROR(
              moving_in[node].TryDeserializeRows(&reader, config.key_bytes));
        }
        SortBlockByKey(&moving_in[node], config.thread_pool);
        fixed_local[node] = fixed.node(node);
        SortBlockByKey(&fixed_local[node], config.thread_pool);
        return Status::OK();
      }));

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "final merge-join", [&](uint32_t node) {
        JoinSink sink =
            config.materialize
                ? MaterializeSink(&out_blocks[node], &checksums[node],
                                  r.payload_width(), s.payload_width())
                : ChecksumSink(&checksums[node], r.payload_width(),
                               s.payload_width());
        // The sink expects (key, payloadR, payloadS): keep R first.
        const TupleBlock& r_side =
            broadcast_r ? moving_in[node] : fixed_local[node];
        const TupleBlock& s_side =
            broadcast_r ? fixed_local[node] : moving_in[node];
        outputs[node] = MergeJoinSorted(r_side, s_side, sink);
        return Status::OK();
      }));

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.reliability = fabric.reliability();
  result.profile = BuildStepProfile(broadcast_r ? "bj-r" : "bj-s", fabric);
  for (uint32_t node = 0; node < n; ++node) {
    result.output_rows += outputs[node];
    result.checksum.Merge(checksums[node]);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

}  // namespace tj
