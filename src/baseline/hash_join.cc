#include "baseline/hash_join.h"

#include <vector>

#include "common/logging.h"
#include "exec/local_join.h"
#include "exec/partition.h"
#include "exec/radix_sort.h"
#include "net/fabric.h"

namespace tj {

JoinResult RunHashJoin(const PartitionedTable& r, const PartitionedTable& s,
                       const JoinConfig& config) {
  Result<JoinResult> result = TryRunHashJoin(r, s, config);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<JoinResult> TryRunHashJoin(const PartitionedTable& r,
                                  const PartitionedTable& s,
                                  const JoinConfig& config) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  if (config.fault_policy != nullptr) {
    fabric.SetFaultPolicy(*config.fault_policy, config.fault_seed);
  }
  fabric.SetPhaseDeadline(config.phase_deadline_seconds);
  fabric.SetDiagnosticsSink(config.diagnostics);
  std::vector<TupleBlock> r_in(n, TupleBlock(r.payload_width()));
  std::vector<TupleBlock> s_in(n, TupleBlock(s.payload_width()));
  std::vector<JoinChecksum> checksums(n);
  std::vector<uint64_t> outputs(n, 0);

  // Partition + transfer, one table at a time (paper Table 3 rows 1-4).
  // The radix partitioner materializes contiguous per-partition runs
  // (stable, so the serialized streams are byte-identical to row-indexed
  // serialization in input order) and each run ships with one straight
  // SerializeRows scan.
  auto partition_and_send = [&](const PartitionedTable& table,
                                MessageType type, uint32_t node) -> Status {
    Result<PartitionLayout> layout =
        TryRadixPartition(table.node(node), n, config.thread_pool);
    TJ_RETURN_IF_ERROR(layout.status());
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (layout->Size(dst) == 0) continue;
      ByteBuffer buf;
      layout->tuples.SerializeRows(layout->Begin(dst), layout->End(dst),
                                   config.key_bytes, &buf);
      fabric.Send(node, dst, type, std::move(buf));
    }
    return Status::OK();
  };
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "hash partition & transfer R tuples", [&](uint32_t node) {
        return partition_and_send(r, MessageType::kDataR, node);
      }));
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "hash partition & transfer S tuples", [&](uint32_t node) {
        return partition_and_send(s, MessageType::kDataS, node);
      }));

  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "sort received R tuples", [&](uint32_t node) -> Status {
        for (const auto& msg : fabric.TakeInbox(node, MessageType::kDataR)) {
          ByteReader reader(msg.data);
          TJ_RETURN_IF_ERROR(
              r_in[node].TryDeserializeRows(&reader, config.key_bytes));
        }
        SortBlockByKey(&r_in[node], config.thread_pool);
        return Status::OK();
      }));
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "sort received S tuples", [&](uint32_t node) -> Status {
        for (const auto& msg : fabric.TakeInbox(node, MessageType::kDataS)) {
          ByteReader reader(msg.data);
          TJ_RETURN_IF_ERROR(
              s_in[node].TryDeserializeRows(&reader, config.key_bytes));
        }
        SortBlockByKey(&s_in[node], config.thread_pool);
        return Status::OK();
      }));

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "final merge-join", [&](uint32_t node) {
        JoinSink sink =
            config.materialize
                ? MaterializeSink(&out_blocks[node], &checksums[node],
                                  r.payload_width(), s.payload_width())
                : ChecksumSink(&checksums[node], r.payload_width(),
                               s.payload_width());
        outputs[node] = MergeJoinSorted(r_in[node], s_in[node], sink);
        return Status::OK();
      }));

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.reliability = fabric.reliability();
  result.profile = BuildStepProfile("hj", fabric);
  result.node_output_rows.assign(outputs.begin(), outputs.end());
  for (uint32_t node = 0; node < n; ++node) {
    result.output_rows += outputs[node];
    result.checksum.Merge(checksums[node]);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

}  // namespace tj
