#include "baseline/hash_join.h"

#include <vector>

#include "common/logging.h"
#include "exec/local_join.h"
#include "exec/partition.h"
#include "exec/radix_sort.h"
#include "net/fabric.h"

namespace tj {

JoinResult RunHashJoin(const PartitionedTable& r, const PartitionedTable& s,
                       const JoinConfig& config) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  std::vector<TupleBlock> r_in(n, TupleBlock(r.payload_width()));
  std::vector<TupleBlock> s_in(n, TupleBlock(s.payload_width()));
  std::vector<JoinChecksum> checksums(n);
  std::vector<uint64_t> outputs(n, 0);

  // Partition + transfer, one table at a time (paper Table 3 rows 1-4).
  fabric.RunPhase("hash partition & transfer R tuples", [&](uint32_t node) {
    auto parts = HashPartitionIndexes(r.node(node), n);
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (parts[dst].empty()) continue;
      ByteBuffer buf;
      r.node(node).SerializeRowsIndexed(parts[dst], config.key_bytes, &buf);
      fabric.Send(node, dst, MessageType::kDataR, std::move(buf));
    }
  });
  fabric.RunPhase("hash partition & transfer S tuples", [&](uint32_t node) {
    auto parts = HashPartitionIndexes(s.node(node), n);
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (parts[dst].empty()) continue;
      ByteBuffer buf;
      s.node(node).SerializeRowsIndexed(parts[dst], config.key_bytes, &buf);
      fabric.Send(node, dst, MessageType::kDataS, std::move(buf));
    }
  });

  fabric.RunPhase("sort received R tuples", [&](uint32_t node) {
    for (const auto& msg : fabric.TakeInbox(node, MessageType::kDataR)) {
      ByteReader reader(msg.data);
      r_in[node].DeserializeRows(&reader, config.key_bytes);
    }
    SortBlockByKey(&r_in[node]);
  });
  fabric.RunPhase("sort received S tuples", [&](uint32_t node) {
    for (const auto& msg : fabric.TakeInbox(node, MessageType::kDataS)) {
      ByteReader reader(msg.data);
      s_in[node].DeserializeRows(&reader, config.key_bytes);
    }
    SortBlockByKey(&s_in[node]);
  });

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));
  fabric.RunPhase("final merge-join", [&](uint32_t node) {
    JoinSink sink =
        config.materialize
            ? MaterializeSink(&out_blocks[node], &checksums[node],
                              r.payload_width(), s.payload_width())
            : ChecksumSink(&checksums[node], r.payload_width(),
                           s.payload_width());
    outputs[node] = MergeJoinSorted(r_in[node], s_in[node], sink);
  });

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  for (uint32_t node = 0; node < n; ++node) {
    result.output_rows += outputs[node];
    result.checksum.Merge(checksums[node]);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

}  // namespace tj
