// Broadcast (fragment-and-replicate) join baseline.
//
// One table is replicated to every node; the other never moves. Network
// traffic is (N-1) × the broadcast table's full width — only competitive
// when that table is very small (paper Section 3.1).
#ifndef TJ_BASELINE_BROADCAST_JOIN_H_
#define TJ_BASELINE_BROADCAST_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

/// Runs the broadcast join; `direction` selects the replicated table
/// (kRtoS broadcasts R, kStoR broadcasts S). Inputs are not modified.
///
/// Fails with Status::DataLoss / Status::Corruption (never aborts, never a
/// partial result) on unrecoverable faults under an active
/// config.fault_policy — see core/track_join.h.
Result<JoinResult> TryRunBroadcastJoin(const PartitionedTable& r,
                                       const PartitionedTable& s,
                                       const JoinConfig& config,
                                       Direction direction);

/// Infallible wrapper: aborts if the run fails.
JoinResult RunBroadcastJoin(const PartitionedTable& r,
                            const PartitionedTable& s,
                            const JoinConfig& config, Direction direction);

}  // namespace tj

#endif  // TJ_BASELINE_BROADCAST_JOIN_H_
