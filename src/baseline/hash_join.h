// Grace hash join over the network — the predominant distributed join and
// the paper's main baseline.
//
// Both tables are hash-partitioned on the join key across all nodes
// (destination = hash(key) mod N), then each node joins its received
// partitions locally with sort-merge join. Expected network traffic is
// (1 - 1/N) of both tables' full width.
#ifndef TJ_BASELINE_HASH_JOIN_H_
#define TJ_BASELINE_HASH_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

/// Runs the distributed hash join. Inputs are not modified.
///
/// Fails with Status::DataLoss / Status::Corruption (never aborts, never a
/// partial result) on unrecoverable faults under an active
/// config.fault_policy — see core/track_join.h.
Result<JoinResult> TryRunHashJoin(const PartitionedTable& r,
                                  const PartitionedTable& s,
                                  const JoinConfig& config);

/// Infallible wrapper: aborts if the run fails.
JoinResult RunHashJoin(const PartitionedTable& r, const PartitionedTable& s,
                       const JoinConfig& config);

}  // namespace tj

#endif  // TJ_BASELINE_HASH_JOIN_H_
