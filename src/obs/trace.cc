#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/text_escape.h"

namespace tj {

namespace {

using Clock = std::chrono::steady_clock;

/// One fixed epoch for the whole process so timestamps from different
/// threads and different fabrics share a timeline.
Clock::time_point ProcessEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

thread_local uint32_t tls_trace_node = kTraceNoNode;

/// Chrome wants distinct integer pids; node ids are small, so pseudo
/// processes (the "(host)" track for un-attributed work) get offset ids.
constexpr uint32_t kHostPid = 1000000;

uint32_t ExportPid(uint32_t node) {
  return node == kTraceNoNode ? kHostPid : node;
}

}  // namespace

std::atomic<int> Tracer::enabled_{0};

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  (void)ProcessEpoch();  // Pin the epoch no later than first use.
  return *tracer;
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               ProcessEpoch())
      .count();
}

Tracer::ThreadLog* Tracer::LogForThisThread() {
  // Each thread registers one log on first use and caches the pointer; the
  // logs are owned by the (leaked) tracer, so the cache can never dangle.
  thread_local ThreadLog* log = nullptr;
  if (log == nullptr) {
    auto owned = std::make_unique<ThreadLog>();
    log = owned.get();
    std::lock_guard<std::mutex> lock(registry_mu_);
    owned->tid = logs_.size() + 1;
    logs_.push_back(std::move(owned));
  }
  return log;
}

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  ThreadLog* log = LogForThisThread();
  event.tid = log->tid;
  std::lock_guard<std::mutex> lock(log->mu);
  log->events.push_back(std::move(event));
}

void Tracer::RecordCounter(const std::string& name, uint32_t node,
                           int64_t value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = "counter";
  event.node = node;
  event.t_start_us = NowMicros();
  event.phase = 'C';
  event.value = value;
  Record(std::move(event));
}

void Tracer::SetProcessLabel(uint32_t node, std::string label) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  process_labels_[node] = std::move(label);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& log : logs_) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      out.insert(out.end(), log->events.begin(), log->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_start_us < b.t_start_us;
                   });
  return out;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    n += log->events.size();
  }
  return n;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
  process_labels_.clear();
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::map<uint32_t, std::string> labels;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    labels = process_labels_;
  }
  if (labels.find(kTraceNoNode) == labels.end()) labels[kTraceNoNode] = "(host)";

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[160];
  for (const auto& [node, label] : labels) {
    if (!first) out += ",\n ";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %u, "
                  "\"tid\": 0, \"args\": {\"name\": ",
                  ExportPid(node));
    out += buf;
    AppendJsonEscaped(label, &out);
    out += "}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n ";
    first = false;
    out += "{\"name\": ";
    AppendJsonEscaped(e.name, &out);
    out += ", \"cat\": ";
    AppendJsonEscaped(e.category, &out);
    std::snprintf(buf, sizeof(buf),
                  ", \"ph\": \"%c\", \"pid\": %u, \"tid\": %llu, "
                  "\"ts\": %lld",
                  e.phase, ExportPid(e.node),
                  static_cast<unsigned long long>(e.tid),
                  static_cast<long long>(e.t_start_us));
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ", \"dur\": %lld",
                    static_cast<long long>(e.dur_us));
      out += buf;
    }
    // args object: counters always carry "value", spans carry "rows" when
    // set, and either may carry extra integer pairs (TraceEvent::args).
    bool args_open = false;
    auto put_arg = [&](const std::string& key, int64_t value) {
      out += args_open ? ", " : ", \"args\": {";
      args_open = true;
      AppendJsonEscaped(key, &out);
      std::snprintf(buf, sizeof(buf), ": %lld",
                    static_cast<long long>(value));
      out += buf;
    };
    if (e.phase == 'C') {
      put_arg("value", e.value);
    } else if (e.phase == 'X' && e.value >= 0) {
      put_arg("rows", e.value);
    }
    for (const auto& [key, value] : e.args) put_arg(key, value);
    if (args_open) out += "}";
    out += "}";
  }
  out += "]}";
  return out;
}

uint32_t CurrentTraceNode() { return tls_trace_node; }

ScopedTraceNode::ScopedTraceNode(uint32_t node) : saved_(tls_trace_node) {
  tls_trace_node = node;
}

ScopedTraceNode::~ScopedTraceNode() { tls_trace_node = saved_; }

TraceSpan::TraceSpan(const char* category, std::string_view name,
                     int64_t rows) {
  if (!Tracer::enabled()) return;
  Tracer& tracer = Tracer::Global();
  start_us_ = tracer.NowMicros();
  rows_ = rows;
  name_.assign(name);
  category_ = category;
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0) return;
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.node = tls_trace_node;
  event.t_start_us = start_us_;
  event.dur_us = tracer.NowMicros() - start_us_;
  event.phase = 'X';
  event.value = rows_;
  tracer.Record(std::move(event));
}

}  // namespace tj
