#include "obs/blame.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "net/pipelined_fabric.h"
#include "obs/text_escape.h"

namespace tj {
namespace {

// Must round exactly like the fabric's trace export so the bucket sum
// telescopes to the same integer the pipeline.makespan_us counter carries.
int64_t ToMicros(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

struct Segment {
  double begin = 0;
  double end = 0;
  BlameClass cls = BlameClass::kCompute;
  uint32_t node = 0;
  uint32_t stage = 0;
  std::string label;
};

}  // namespace

const char* BlameClassName(BlameClass c) {
  switch (c) {
    case BlameClass::kCompute: return "compute";
    case BlameClass::kCpuQueue: return "cpu_queue";
    case BlameClass::kCreditHol: return "credit_hol";
    case BlameClass::kCreditExhausted: return "credit_exhausted";
    case BlameClass::kEgressHol: return "egress_hol";
    case BlameClass::kEgressQueue: return "egress_queue";
    case BlameClass::kDrrWait: return "drr_wait";
    case BlameClass::kIngressQueue: return "ingress_queue";
    case BlameClass::kWire: return "wire";
  }
  return "unknown";
}

const char* BlameClassResource(BlameClass c) {
  switch (c) {
    case BlameClass::kCompute:
    case BlameClass::kCpuQueue: return "cpu";
    case BlameClass::kCreditHol:
    case BlameClass::kCreditExhausted: return "link";
    case BlameClass::kEgressHol:
    case BlameClass::kEgressQueue:
    case BlameClass::kDrrWait: return "nic.egress";
    case BlameClass::kIngressQueue: return "nic.ingress";
    case BlameClass::kWire: return "wire";
  }
  return "unknown";
}

BlameReport BuildBlameReport(const PipelinedFabric& fabric, size_t top_k) {
  const auto& tasks = fabric.task_timings();
  const auto& chunks = fabric.chunk_timings();
  BlameReport report;
  report.num_nodes = fabric.num_nodes();
  report.makespan_us = ToMicros(fabric.makespan_seconds());

  // Root: the entity whose completion is the makespan. Tasks win exact
  // ties (a local chunk's arrival coincides with its sender's finish, and
  // the task chain is the longer explanation); a chunk can still be the
  // root on its own — e.g. an arrival at a crashed node that never runs a
  // handler.
  double best = -1;
  int64_t root = -1;
  bool root_is_task = true;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].finish > best) {
      best = tasks[i].finish;
      root = static_cast<int64_t>(i);
      root_is_task = true;
    }
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].delivered && !chunks[i].local && chunks[i].arrival > best) {
      best = chunks[i].arrival;
      root = static_cast<int64_t>(i);
      root_is_task = false;
    }
  }
  if (root < 0) {
    report.reconciled = (report.makespan_us == 0);
    return report;
  }

  // Walk the dependency chain backward, emitting exclusive segments. Each
  // hop lands exactly where the next entity's last boundary ends (a task's
  // ready time is its parent's finish or its chunk's arrival; a chunk's
  // admit time is its sender's finish), so the emitted boundaries form one
  // contiguous chain from the makespan back to time zero.
  std::vector<Segment> segments;
  auto emit = [&segments](double begin, double end, BlameClass cls,
                          uint32_t node, uint32_t stage, std::string label) {
    if (end <= begin) return;
    segments.push_back(
        Segment{begin, end, cls, node, stage, std::move(label)});
  };
  bool is_task = root_is_task;
  int64_t index = root;
  while (index >= 0) {
    if (is_task) {
      const auto& task = tasks[static_cast<size_t>(index)];
      const std::string& label =
          fabric.task_label(static_cast<uint64_t>(index));
      emit(task.start, task.finish, BlameClass::kCompute, task.node,
           task.stage, label);
      emit(task.ready, task.start, BlameClass::kCpuQueue, task.node,
           task.stage, label);
      if (task.parent_chunk >= 0) {
        is_task = false;
        index = task.parent_chunk;
      } else if (task.parent_task >= 0) {
        index = task.parent_task;
      } else {
        break;  // Setup post, released at time zero.
      }
    } else {
      const auto& chunk = chunks[static_cast<size_t>(index)];
      if (!chunk.local) {
        std::string label = std::string(MessageTypeName(chunk.type)) + " s" +
                            std::to_string(chunk.src) + "->d" +
                            std::to_string(chunk.dst);
        emit(chunk.wire_start, chunk.arrival, BlameClass::kWire, chunk.src,
             chunk.stage, label);
        if (!chunk.egress_marks.empty()) {
          // DRR: the NIC wait [grant, wire_start) is classified piecewise
          // at the scheduler's actual decision points; each mark's state
          // holds until the next mark, the last until wire_start. The
          // first mark sits exactly at `grant`, so the chain telescopes.
          using EgressWait = PipelinedFabric::ChunkTiming::EgressWait;
          for (size_t m = 0; m < chunk.egress_marks.size(); ++m) {
            const double begin = chunk.egress_marks[m].first;
            const double end = (m + 1 < chunk.egress_marks.size())
                                   ? chunk.egress_marks[m + 1].first
                                   : chunk.wire_start;
            BlameClass cls = BlameClass::kEgressQueue;
            uint32_t node = chunk.src;
            switch (chunk.egress_marks[m].second) {
              case EgressWait::kQueue: cls = BlameClass::kEgressQueue; break;
              case EgressWait::kDeficit: cls = BlameClass::kDrrWait; break;
              case EgressWait::kHol: cls = BlameClass::kEgressHol; break;
              case EgressWait::kIngress:
                cls = BlameClass::kIngressQueue;
                node = chunk.dst;
                break;
            }
            emit(begin, end, cls, node, chunk.stage, label);
          }
        } else {
          emit(chunk.egress_clear, chunk.wire_start,
               BlameClass::kIngressQueue, chunk.dst, chunk.stage, label);
          emit(chunk.grant, chunk.egress_clear,
               chunk.egress_hol ? BlameClass::kEgressHol
                                : BlameClass::kEgressQueue,
               chunk.src, chunk.stage, label);
        }
        emit(chunk.head, chunk.grant, BlameClass::kCreditExhausted, chunk.src,
             chunk.stage, label);
        emit(chunk.admit, chunk.head, BlameClass::kCreditHol, chunk.src,
             chunk.stage, label);
      }
      is_task = true;
      index = chunk.sender_task;
    }
  }

  // Round each boundary once; the per-segment micros telescope to the
  // rounded makespan because consecutive segments share boundaries.
  std::map<std::tuple<uint32_t, int, uint32_t>, int64_t> bucket_us;
  std::vector<BlameEdge> edges;
  for (const Segment& seg : segments) {
    const int64_t us = ToMicros(seg.end) - ToMicros(seg.begin);
    report.bucket_sum_us += us;
    report.class_us[static_cast<int>(seg.cls)] += us;
    if (us <= 0) continue;
    ++report.path_segments;
    bucket_us[{seg.node, static_cast<int>(seg.cls), seg.stage}] += us;
    BlameEdge edge;
    edge.start_us = ToMicros(seg.begin);
    edge.end_us = ToMicros(seg.end);
    edge.node = seg.node;
    edge.resource = BlameClassResource(seg.cls);
    edge.stage = fabric.stage_name(seg.stage);
    edge.wait_class = BlameClassName(seg.cls);
    edge.label = seg.label;
    edges.push_back(std::move(edge));
  }
  report.hol_us = report.class_us[static_cast<int>(BlameClass::kCreditHol)] +
                  report.class_us[static_cast<int>(BlameClass::kEgressHol)];
  report.reconciled = (report.bucket_sum_us == report.makespan_us);

  for (const auto& [key, us] : bucket_us) {
    const auto& [node, cls, stage] = key;
    BlameBucket bucket;
    bucket.node = node;
    bucket.resource = BlameClassResource(static_cast<BlameClass>(cls));
    bucket.stage = fabric.stage_name(stage);
    bucket.wait_class = BlameClassName(static_cast<BlameClass>(cls));
    bucket.micros = us;
    report.buckets.push_back(std::move(bucket));
  }
  // Map iteration is already a total order; stable re-sort by size keeps
  // the output deterministic for equal-sized buckets.
  std::stable_sort(report.buckets.begin(), report.buckets.end(),
                   [](const BlameBucket& a, const BlameBucket& b) {
                     return a.micros > b.micros;
                   });
  std::stable_sort(edges.begin(), edges.end(),
                   [](const BlameEdge& a, const BlameEdge& b) {
                     const int64_t da = a.end_us - a.start_us;
                     const int64_t db = b.end_us - b.start_us;
                     if (da != db) return da > db;
                     return a.start_us < b.start_us;
                   });
  if (edges.size() > top_k) edges.resize(top_k);
  report.top_edges = std::move(edges);
  return report;
}

std::string ToJson(const BlameReport& report) {
  std::string out = "{";
  out += "\"algorithm\": " + JsonEscaped(report.algorithm);
  out += ", \"num_nodes\": " + std::to_string(report.num_nodes);
  out += ", \"makespan_us\": " + std::to_string(report.makespan_us);
  out += ", \"bucket_sum_us\": " + std::to_string(report.bucket_sum_us);
  out += std::string(", \"reconciled\": ") +
         (report.reconciled ? "true" : "false");
  out += ", \"path_segments\": " + std::to_string(report.path_segments);
  out += ", \"classes\": {";
  for (int c = 0; c < kNumBlameClasses; ++c) {
    if (c > 0) out += ", ";
    out += JsonEscaped(BlameClassName(static_cast<BlameClass>(c))) + ": " +
           std::to_string(report.class_us[c]);
  }
  out += "}";
  out += ", \"hol_us\": " + std::to_string(report.hol_us);
  char buf[64];
  const double share =
      report.makespan_us > 0
          ? static_cast<double>(report.hol_us) / report.makespan_us
          : 0.0;
  std::snprintf(buf, sizeof(buf), "%.6f", share);
  out += ", \"hol_share\": " + std::string(buf);
  out += ", \"buckets\": [";
  for (size_t i = 0; i < report.buckets.size(); ++i) {
    const BlameBucket& b = report.buckets[i];
    if (i > 0) out += ", ";
    out += "{\"node\": " + std::to_string(b.node);
    out += ", \"resource\": " + JsonEscaped(b.resource);
    out += ", \"stage\": " + JsonEscaped(b.stage);
    out += ", \"class\": " + JsonEscaped(b.wait_class);
    out += ", \"us\": " + std::to_string(b.micros) + "}";
  }
  out += "]";
  out += ", \"top_edges\": [";
  for (size_t i = 0; i < report.top_edges.size(); ++i) {
    const BlameEdge& e = report.top_edges[i];
    if (i > 0) out += ", ";
    out += "{\"start_us\": " + std::to_string(e.start_us);
    out += ", \"end_us\": " + std::to_string(e.end_us);
    out += ", \"node\": " + std::to_string(e.node);
    out += ", \"resource\": " + JsonEscaped(e.resource);
    out += ", \"stage\": " + JsonEscaped(e.stage);
    out += ", \"class\": " + JsonEscaped(e.wait_class);
    out += ", \"label\": " + JsonEscaped(e.label) + "}";
  }
  out += "]}";
  return out;
}

std::string ToTable(const BlameReport& report) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "critical-path blame: algorithm=%s nodes=%u makespan_us=%lld "
                "reconciled=%s\n",
                report.algorithm.c_str(), report.num_nodes,
                static_cast<long long>(report.makespan_us),
                report.reconciled ? "yes" : "NO");
  out += buf;
  const double denom =
      report.makespan_us > 0 ? static_cast<double>(report.makespan_us) : 1.0;
  out += "  class                micros   share\n";
  for (int c = 0; c < kNumBlameClasses; ++c) {
    std::snprintf(buf, sizeof(buf), "  %-18s %9lld  %5.1f%%\n",
                  BlameClassName(static_cast<BlameClass>(c)),
                  static_cast<long long>(report.class_us[c]),
                  100.0 * report.class_us[c] / denom);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  hol (credit_hol + egress_hol): %lld us (%.1f%%)\n",
                static_cast<long long>(report.hol_us),
                100.0 * report.hol_us / denom);
  out += buf;
  out += "  top buckets:\n";
  const size_t max_rows = 10;
  for (size_t i = 0; i < report.buckets.size() && i < max_rows; ++i) {
    const BlameBucket& b = report.buckets[i];
    std::snprintf(buf, sizeof(buf), "    n%-3u %-11s %-10s %-16s %9lld\n",
                  b.node, b.resource.c_str(), b.stage.c_str(),
                  b.wait_class.c_str(), static_cast<long long>(b.micros));
    out += buf;
  }
  out += "  top edges:\n";
  for (const BlameEdge& e : report.top_edges) {
    std::snprintf(buf, sizeof(buf),
                  "    [%9lld .. %9lld] n%-3u %-10s %-16s %s\n",
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.end_us), e.node, e.stage.c_str(),
                  e.wait_class.c_str(), e.label.c_str());
    out += buf;
  }
  return out;
}

}  // namespace tj
