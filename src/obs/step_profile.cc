#include "obs/step_profile.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "net/fabric.h"
#include "obs/metrics.h"
#include "obs/text_escape.h"

namespace tj {

namespace {

uint64_t Sum(const std::array<uint64_t, kNumMessageTypes>& a) {
  return std::accumulate(a.begin(), a.end(), uint64_t{0});
}

void AppendJsonString(const std::string& s, std::string* out) {
  AppendJsonEscaped(s, out);
}

void AppendField(const char* key, double value, bool* first, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %.9g", *first ? "" : ", ", key,
                value);
  *first = false;
  *out += buf;
}

void AppendField(const char* key, uint64_t value, bool* first,
                 std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", *first ? "" : ", ", key,
                static_cast<unsigned long long>(value));
  *first = false;
  *out += buf;
}

}  // namespace

double StepProfile::TotalWallSeconds() const {
  double total = 0;
  for (const StepRecord& s : steps) total += s.wall_seconds;
  return total;
}

double StepProfile::TotalNetSeconds() const {
  double total = 0;
  for (const StepRecord& s : steps) total += s.net_seconds;
  return total;
}

uint64_t StepProfile::TotalGoodputBytes() const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.goodput_bytes;
  return total;
}

uint64_t StepProfile::TotalLocalBytes() const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.local_bytes;
  return total;
}

uint64_t StepProfile::TotalRetransmitBytes() const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.retransmit_bytes;
  return total;
}

uint64_t StepProfile::TotalRetransmittedFrames() const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.retransmitted_frames;
  return total;
}

uint64_t StepProfile::TotalNackMessages() const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.nack_messages;
  return total;
}

uint64_t StepProfile::NetworkBytes(MessageType type) const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.NetworkBytes(type);
  return total;
}

uint64_t StepProfile::LocalBytes(MessageType type) const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.LocalBytes(type);
  return total;
}

uint64_t StepProfile::RetransmitBytes(MessageType type) const {
  uint64_t total = 0;
  for (const StepRecord& s : steps) total += s.RetransmitBytes(type);
  return total;
}

const StepRecord* StepProfile::Find(const std::string& phase) const {
  for (const StepRecord& s : steps) {
    if (s.phase == phase) return &s;
  }
  return nullptr;
}

double StepProfile::WallSeconds(const std::string& phase) const {
  const StepRecord* rec = Find(phase);
  return rec != nullptr ? rec->wall_seconds : 0.0;
}

void StepProfile::ApplyTimeModel(const NetworkTimeModel& model) {
  for (StepRecord& s : steps) {
    s.net_seconds = static_cast<double>(s.max_node_bytes) /
                    model.node_bandwidth_bytes_per_sec;
  }
}

void StepProfile::Prepend(const StepProfile& prologue) {
  steps.insert(steps.begin(), prologue.steps.begin(), prologue.steps.end());
  run_max_node_bytes = std::max(run_max_node_bytes,
                                prologue.run_max_node_bytes);
}

StepProfile BuildStepProfile(const std::string& algorithm,
                             const Fabric& fabric,
                             const NetworkTimeModel& model) {
  StepProfile profile;
  profile.algorithm = algorithm;
  profile.num_nodes = fabric.num_nodes();
  profile.run_max_node_bytes = fabric.traffic().MaxNodeBytes();
  profile.recovery_bytes = fabric.traffic().TotalRecoveryBytes();
  profile.steps.reserve(fabric.phase_stats().size());
  for (const Fabric::PhaseStats& st : fabric.phase_stats()) {
    StepRecord rec;
    rec.phase = st.name;
    rec.wall_seconds = st.wall_seconds;
    rec.network_bytes_by_type = st.network_bytes;
    rec.local_bytes_by_type = st.local_bytes;
    rec.retransmit_bytes_by_type = st.retransmit_bytes;
    rec.goodput_bytes = Sum(st.network_bytes);
    rec.local_bytes = Sum(st.local_bytes);
    rec.retransmit_bytes = Sum(st.retransmit_bytes);
    rec.max_node_bytes = st.max_node_bytes;
    rec.net_seconds = static_cast<double>(st.max_node_bytes) /
                      model.node_bandwidth_bytes_per_sec;
    rec.retransmitted_frames = st.retransmitted_frames;
    rec.nack_messages = st.nack_messages;
    rec.frames_dropped = st.faults.frames_dropped;
    rec.frames_corrupted = st.faults.frames_corrupted;
    rec.frames_duplicated = st.faults.frames_duplicated;
    profile.steps.push_back(std::move(rec));
  }

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("join.runs").Increment();
  metrics.counter("join.phases").Increment(profile.steps.size());
  metrics.counter("join.goodput_bytes").Increment(profile.TotalGoodputBytes());
  metrics.counter("join.local_bytes").Increment(profile.TotalLocalBytes());
  metrics.counter("join.retransmit_bytes")
      .Increment(profile.TotalRetransmitBytes());
  metrics.counter("join.retransmitted_frames")
      .Increment(profile.TotalRetransmittedFrames());
  metrics.counter("join.nack_messages").Increment(profile.TotalNackMessages());
  metrics.timer("join.wall_seconds").Record(profile.TotalWallSeconds());
  metrics.gauge("join.last_net_seconds").Set(profile.TotalNetSeconds());
  Histogram& wall_hist = metrics.histogram("join.phase_wall_seconds");
  Histogram& net_hist = metrics.histogram("join.phase_net_seconds");
  for (const StepRecord& s : profile.steps) {
    wall_hist.Observe(s.wall_seconds);
    net_hist.Observe(s.net_seconds);
  }
  return profile;
}

std::string ToJson(const StepProfile& profile) {
  std::string out = "{";
  out += "\"algorithm\": ";
  AppendJsonString(profile.algorithm, &out);
  bool first = false;
  AppendField("nodes", static_cast<uint64_t>(profile.num_nodes), &first, &out);
  out += ", \"totals\": {";
  first = true;
  AppendField("wall_seconds", profile.TotalWallSeconds(), &first, &out);
  AppendField("net_seconds", profile.TotalNetSeconds(), &first, &out);
  AppendField("goodput_bytes", profile.TotalGoodputBytes(), &first, &out);
  AppendField("local_bytes", profile.TotalLocalBytes(), &first, &out);
  AppendField("retransmit_bytes", profile.TotalRetransmitBytes(), &first,
              &out);
  AppendField("run_max_node_bytes", profile.run_max_node_bytes, &first, &out);
  AppendField("recovery_bytes", profile.recovery_bytes, &first, &out);
  out += "}, \"steps\": [";
  for (size_t i = 0; i < profile.steps.size(); ++i) {
    const StepRecord& s = profile.steps[i];
    if (i > 0) out += ", ";
    out += "{\"phase\": ";
    AppendJsonString(s.phase, &out);
    first = false;
    AppendField("wall_seconds", s.wall_seconds, &first, &out);
    AppendField("net_seconds", s.net_seconds, &first, &out);
    AppendField("goodput_bytes", s.goodput_bytes, &first, &out);
    AppendField("local_bytes", s.local_bytes, &first, &out);
    AppendField("retransmit_bytes", s.retransmit_bytes, &first, &out);
    AppendField("max_node_bytes", s.max_node_bytes, &first, &out);
    AppendField("retransmitted_frames", s.retransmitted_frames, &first, &out);
    AppendField("nack_messages", s.nack_messages, &first, &out);
    AppendField("frames_dropped", s.frames_dropped, &first, &out);
    AppendField("frames_corrupted", s.frames_corrupted, &first, &out);
    AppendField("frames_duplicated", s.frames_duplicated, &first, &out);
    out += ", \"bytes_by_type\": {";
    bool first_type = true;
    for (int t = 0; t < kNumMessageTypes; ++t) {
      if (s.network_bytes_by_type[t] == 0 && s.local_bytes_by_type[t] == 0 &&
          s.retransmit_bytes_by_type[t] == 0) {
        continue;
      }
      if (!first_type) out += ", ";
      first_type = false;
      AppendJsonString(MessageTypeName(static_cast<MessageType>(t)), &out);
      out += ": {";
      bool f = true;
      AppendField("network", s.network_bytes_by_type[t], &f, &out);
      AppendField("local", s.local_bytes_by_type[t], &f, &out);
      AppendField("retransmit", s.retransmit_bytes_by_type[t], &f, &out);
      out += "}";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string StepCsvHeader() {
  return "algorithm,phase,wall_seconds,net_seconds,goodput_bytes,"
         "local_bytes,retransmit_bytes,max_node_bytes,retransmitted_frames,"
         "nack_messages,frames_dropped,frames_corrupted,frames_duplicated";
}

std::string ToCsv(const StepProfile& profile) {
  std::string out;
  // Algorithm and phase are caller-supplied strings: the algorithm field is
  // quoted only when it needs to be (plain names stay byte-identical), the
  // phase field keeps its historical always-quoted form with internal
  // quotes doubled per RFC 4180.
  const std::string algorithm = CsvField(profile.algorithm);
  for (const StepRecord& s : profile.steps) {
    out += algorithm;
    out += ',';
    out += CsvQuoted(s.phase);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  ",%.9g,%.9g,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%llu\n",
                  s.wall_seconds, s.net_seconds,
                  static_cast<unsigned long long>(s.goodput_bytes),
                  static_cast<unsigned long long>(s.local_bytes),
                  static_cast<unsigned long long>(s.retransmit_bytes),
                  static_cast<unsigned long long>(s.max_node_bytes),
                  static_cast<unsigned long long>(s.retransmitted_frames),
                  static_cast<unsigned long long>(s.nack_messages),
                  static_cast<unsigned long long>(s.frames_dropped),
                  static_cast<unsigned long long>(s.frames_corrupted),
                  static_cast<unsigned long long>(s.frames_duplicated));
    out += buf;
  }
  return out;
}

std::string ToTable(const StepProfile& profile) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s (%u nodes)\n",
                profile.algorithm.c_str(), profile.num_nodes);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-38s %10s %10s %12s %12s %12s\n",
                "phase", "wall s", "net s", "goodput B", "local B",
                "retrans B");
  out += buf;
  for (const StepRecord& s : profile.steps) {
    std::snprintf(buf, sizeof(buf),
                  "  %-38s %10.4f %10.4f %12llu %12llu %12llu\n",
                  s.phase.c_str(), s.wall_seconds, s.net_seconds,
                  static_cast<unsigned long long>(s.goodput_bytes),
                  static_cast<unsigned long long>(s.local_bytes),
                  static_cast<unsigned long long>(s.retransmit_bytes));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  %-38s %10.4f %10.4f %12llu %12llu %12llu\n", "total",
                profile.TotalWallSeconds(), profile.TotalNetSeconds(),
                static_cast<unsigned long long>(profile.TotalGoodputBytes()),
                static_cast<unsigned long long>(profile.TotalLocalBytes()),
                static_cast<unsigned long long>(profile.TotalRetransmitBytes()));
  out += buf;
  return out;
}

}  // namespace tj
