// Shared text-escaping helpers for the observability renderers.
//
// Phase names, algorithm labels and span names are caller-supplied strings;
// every structured renderer (StepProfile CSV/JSON, the metrics dump, the
// Chrome trace export, the EXPLAIN output) must escape them rather than
// trust them. Header-only so the std-only trace library can use it too.
#ifndef TJ_OBS_TEXT_ESCAPE_H_
#define TJ_OBS_TEXT_ESCAPE_H_

#include <cstdio>
#include <string>

namespace tj {

/// Appends `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes and control characters.
inline void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline std::string JsonEscaped(const std::string& s) {
  std::string out;
  AppendJsonEscaped(s, &out);
  return out;
}

/// RFC 4180 quoting: always wraps `s` in double quotes and doubles internal
/// quotes, so commas, quotes and newlines survive in a single CSV cell.
inline std::string CsvQuoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Quotes only when the field contains a comma, quote or line break; plain
/// fields render unchanged (keeps existing CSV goldens byte-stable).
inline std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  return CsvQuoted(s);
}

}  // namespace tj

#endif  // TJ_OBS_TEXT_ESCAPE_H_
