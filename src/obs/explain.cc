#include "obs/explain.h"

#include <algorithm>
#include <cstdio>

#include "net/message.h"
#include "obs/metrics.h"
#include "obs/text_escape.h"

namespace tj {

namespace {

/// The message types whose bytes the per-key schedules decide (everything a
/// track join sends after the tracking phase).
constexpr MessageType kScheduledTypes[] = {
    MessageType::kLocationsToR, MessageType::kLocationsToS,
    MessageType::kMigrateR,     MessageType::kMigrateS,
    MessageType::kDataR,        MessageType::kDataS,
    MessageType::kMigrationDataR, MessageType::kMigrationDataS,
    MessageType::kFragmentR,    MessageType::kFragmentS,
};

const char* DirName(Direction dir) {
  return dir == Direction::kRtoS ? "r_to_s" : "s_to_r";
}

void AppendU64(const char* key, uint64_t value, bool* first, std::string* out) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", *first ? "" : ", ", key,
                static_cast<unsigned long long>(value));
  *first = false;
  *out += buf;
}

}  // namespace

ScheduleExplain BuildScheduleExplain(const std::string& algorithm,
                                     const ScheduleAuditLog& log,
                                     const TrafficMatrix& traffic,
                                     size_t top_k) {
  ScheduleExplain explain;
  explain.algorithm = algorithm;

  std::vector<KeyScheduleAudit> records = log.Collect();
  Histogram& cost_hist =
      MetricsRegistry::Global().histogram("schedule.key_cost_bytes");
  for (const KeyScheduleAudit& rec : records) {
    ScheduleExplain::ClassTotals& cls =
        explain.by_class[static_cast<int>(rec.cls)];
    ++cls.keys;
    cls.bytes += rec.chosen_cost;
    explain.scheduled_bytes += rec.chosen_cost;
    explain.hash_join_bytes += rec.hash_join_cost;
    cost_hist.Observe(static_cast<double>(rec.chosen_cost));
  }
  explain.total_keys = records.size();

  for (MessageType type : kScheduledTypes) {
    explain.traffic_scheduled_bytes += traffic.NetworkBytes(type);
  }
  explain.tracking_bytes = traffic.NetworkBytes(MessageType::kTrackR) +
                           traffic.NetworkBytes(MessageType::kTrackS);
  explain.traffic_total_bytes = traffic.TotalNetworkBytes();
  explain.matches_traffic =
      explain.scheduled_bytes == explain.traffic_scheduled_bytes;
  explain.saved_vs_hash_bytes =
      static_cast<int64_t>(explain.hash_join_bytes) -
      static_cast<int64_t>(explain.scheduled_bytes);

  // Heavy hitters: the keys whose schedules move the most bytes. Full sort
  // is avoidable, but audit sizes are per-run key counts — fine. The
  // ordering is total and deterministic: cost ties fall back to the key
  // (unique per audit), never to lane or container iteration order, so
  // `--explain-top=K` renders identically across repeated runs.
  std::sort(records.begin(), records.end(),
            [](const KeyScheduleAudit& a, const KeyScheduleAudit& b) {
              if (a.chosen_cost != b.chosen_cost) {
                return a.chosen_cost > b.chosen_cost;
              }
              return a.key < b.key;
            });
  if (records.size() > top_k) records.resize(top_k);
  explain.top = std::move(records);
  return explain;
}

std::string ToJson(const ScheduleExplain& explain) {
  std::string out = "{\"algorithm\": ";
  AppendJsonEscaped(explain.algorithm, &out);
  bool first = false;
  AppendU64("total_keys", explain.total_keys, &first, &out);
  out += ", \"classes\": {";
  for (int c = 0; c < kNumScheduleClasses; ++c) {
    if (c > 0) out += ", ";
    AppendJsonEscaped(ScheduleClassName(static_cast<ScheduleClass>(c)), &out);
    out += ": {";
    bool f = true;
    AppendU64("keys", explain.by_class[c].keys, &f, &out);
    AppendU64("bytes", explain.by_class[c].bytes, &f, &out);
    out += "}";
  }
  out += "}";
  AppendU64("scheduled_bytes", explain.scheduled_bytes, &first, &out);
  AppendU64("traffic_scheduled_bytes", explain.traffic_scheduled_bytes, &first,
            &out);
  AppendU64("tracking_bytes", explain.tracking_bytes, &first, &out);
  AppendU64("traffic_total_bytes", explain.traffic_total_bytes, &first, &out);
  out += ", \"matches_traffic\": ";
  out += explain.matches_traffic ? "true" : "false";
  AppendU64("hash_join_bytes", explain.hash_join_bytes, &first, &out);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"saved_vs_hash_bytes\": %lld",
                static_cast<long long>(explain.saved_vs_hash_bytes));
  out += buf;
  out += ", \"top_keys\": [";
  for (size_t i = 0; i < explain.top.size(); ++i) {
    const KeyScheduleAudit& rec = explain.top[i];
    if (i > 0) out += ", ";
    out += "{";
    bool f = true;
    AppendU64("key", rec.key, &f, &out);
    out += ", \"class\": ";
    AppendJsonEscaped(ScheduleClassName(rec.cls), &out);
    out += ", \"chosen_dir\": ";
    AppendJsonEscaped(DirName(rec.chosen_dir), &out);
    AppendU64("chosen_cost", rec.chosen_cost, &f, &out);
    AppendU64("chosen_migrations", rec.chosen_migrations, &f, &out);
    AppendU64("chosen_split", rec.chosen_split, &f, &out);
    AppendU64("broadcast_cost_r_to_s", rec.broadcast_cost[0], &f, &out);
    AppendU64("broadcast_cost_s_to_r", rec.broadcast_cost[1], &f, &out);
    AppendU64("plan_cost_r_to_s", rec.plan_cost[0], &f, &out);
    AppendU64("plan_cost_s_to_r", rec.plan_cost[1], &f, &out);
    AppendU64("hash_join_cost", rec.hash_join_cost, &f, &out);
    AppendU64("r_bytes", rec.r_bytes, &f, &out);
    AppendU64("s_bytes", rec.s_bytes, &f, &out);
    AppendU64("r_nodes", rec.r_nodes, &f, &out);
    AppendU64("s_nodes", rec.s_nodes, &f, &out);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ToTable(const ScheduleExplain& explain) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "EXPLAIN %s: %llu distinct keys scheduled\n",
                explain.algorithm.c_str(),
                static_cast<unsigned long long>(explain.total_keys));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %12s %14s\n", "decision class",
                "keys", "bytes");
  out += buf;
  for (int c = 0; c < kNumScheduleClasses; ++c) {
    std::snprintf(buf, sizeof(buf), "  %-18s %12llu %14llu\n",
                  ScheduleClassName(static_cast<ScheduleClass>(c)),
                  static_cast<unsigned long long>(explain.by_class[c].keys),
                  static_cast<unsigned long long>(explain.by_class[c].bytes));
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "  scheduled %llu B; actual scheduled traffic %llu B (%s); "
      "tracking %llu B; total %llu B\n",
      static_cast<unsigned long long>(explain.scheduled_bytes),
      static_cast<unsigned long long>(explain.traffic_scheduled_bytes),
      explain.matches_traffic ? "exact match" : "model mismatch",
      static_cast<unsigned long long>(explain.tracking_bytes),
      static_cast<unsigned long long>(explain.traffic_total_bytes));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  hash join would move %llu B -> saved %lld B\n",
                static_cast<unsigned long long>(explain.hash_join_bytes),
                static_cast<long long>(explain.saved_vs_hash_bytes));
  out += buf;
  if (!explain.top.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "  top %zu keys by scheduled bytes:\n", explain.top.size());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  %16s %-18s %-6s %10s %6s %6s %10s %10s %10s\n", "key",
                  "class", "dir", "cost B", "migr", "split", "bc r->s",
                  "bc s->r", "hash B");
    out += buf;
    for (const KeyScheduleAudit& rec : explain.top) {
      std::snprintf(
          buf, sizeof(buf),
          "  %16llu %-18s %-6s %10llu %6u %6u %10llu %10llu %10llu\n",
          static_cast<unsigned long long>(rec.key), ScheduleClassName(rec.cls),
          DirName(rec.chosen_dir),
          static_cast<unsigned long long>(rec.chosen_cost),
          rec.chosen_migrations, rec.chosen_split,
          static_cast<unsigned long long>(rec.broadcast_cost[0]),
          static_cast<unsigned long long>(rec.broadcast_cost[1]),
          static_cast<unsigned long long>(rec.hash_join_cost));
      out += buf;
    }
  }
  return out;
}

}  // namespace tj
