// EXPLAIN for track join: aggregates the per-key scheduler audit
// (core/schedule.h KeyScheduleAudit records) into a decision-class
// breakdown, cross-checks the modeled schedule costs against the run's
// actual TrafficMatrix, and renders the result as JSON or a table
// (`tjsim --explain=json|table`).
//
// The cross-check is exact by construction for 3-/4-phase track join with
// the default wire encodings: location and migration messages carry
// key_bytes + node_bytes per pair and broadcast/migration data carries
// key_bytes + payload per row — precisely the terms SelectiveBroadcastCost
// and PlanMigrateAndBroadcast count. 2-phase tracking omits counts
// (multiplicity is modeled as 1), so its modeled total undershoots actual
// traffic whenever keys repeat; matches_traffic reports the comparison
// either way.
#ifndef TJ_OBS_EXPLAIN_H_
#define TJ_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "net/traffic.h"

namespace tj {

/// Aggregated scheduler audit for one run.
struct ScheduleExplain {
  std::string algorithm;

  struct ClassTotals {
    uint64_t keys = 0;
    uint64_t bytes = 0;  ///< Sum of chosen per-key schedule costs.
  };
  /// Indexed by static_cast<int>(ScheduleClass).
  ClassTotals by_class[kNumScheduleClasses];

  uint64_t total_keys = 0;
  /// Sum of all chosen per-key schedule costs (the model's prediction of
  /// the scheduled network traffic).
  uint64_t scheduled_bytes = 0;
  /// What the run actually paid, from the TrafficMatrix: goodput network
  /// bytes of the eight schedule-driven message types (locations,
  /// migration instructions, broadcast data, migration data) ...
  uint64_t traffic_scheduled_bytes = 0;
  /// ... the tracking phase's key/count messages ...
  uint64_t tracking_bytes = 0;
  /// ... and the run's total goodput (tracking + scheduled for track join).
  uint64_t traffic_total_bytes = 0;
  /// True when scheduled_bytes == traffic_scheduled_bytes (exact for
  /// 3-/4-phase track join under the default encodings).
  bool matches_traffic = false;

  /// Sum of per-key Grace-hash-join costs: what hash-partitioning every
  /// matching tuple to its key's hash node would have moved.
  uint64_t hash_join_bytes = 0;
  /// hash_join_bytes - scheduled_bytes (negative: track join modeled more
  /// scheduled traffic than hash join would move, e.g. 2tj in the wrong
  /// direction).
  int64_t saved_vs_hash_bytes = 0;

  /// The top keys by chosen schedule cost, descending (the heavy hitters
  /// worth a human's attention), capped at the builder's top_k.
  std::vector<KeyScheduleAudit> top;
};

/// Aggregates `log`'s records and cross-checks them against `traffic`.
/// Also feeds the "schedule.key_cost_bytes" histogram in
/// MetricsRegistry::Global(). top_k bounds the heavy-hitter list.
ScheduleExplain BuildScheduleExplain(const std::string& algorithm,
                                     const ScheduleAuditLog& log,
                                     const TrafficMatrix& traffic,
                                     size_t top_k = 10);

/// JSON object (stable schema, checked by tools/check_trace_schema.py).
std::string ToJson(const ScheduleExplain& explain);
/// Human-readable table: per-class totals plus the top-K key breakdown.
std::string ToTable(const ScheduleExplain& explain);

}  // namespace tj

#endif  // TJ_OBS_EXPLAIN_H_
