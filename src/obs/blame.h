// Critical-path blame for the pipelined fabric's modeled makespan.
//
// The pipelined fabric reports one number — makespan_seconds() — but the
// question that matters for tuning (credit windows, chunk sizes, skew
// features) is *what the makespan is made of*: which node, which resource,
// which wait-state. BuildBlameReport answers it with the same reconciliation
// discipline the traffic EXPLAIN uses for bytes: walk the event dependency
// graph backward from the entity that finishes last, decompose the walked
// chain into exclusive, non-overlapping wait segments, and attribute every
// microsecond of the makespan to a (node, resource, stage, wait-class)
// bucket. The bucket sum equals the trace's pipeline.makespan_us counter
// *exactly* (integer microseconds, zero tolerance): segment boundaries
// telescope along a contiguous chain from the makespan back to time zero,
// so rounding each boundary once makes the sum cancel to the rounded
// makespan by construction.
//
// Wait classes (each critical-path microsecond lands in exactly one):
//   compute           a task body on the node's serial CPU
//   cpu_queue         a ready task waiting for the serial CPU (includes a
//                     straggler's late CPU start)
//   credit_hol        a chunk blocked in the link FIFO behind *earlier*
//                     chunks — head-of-line blocking at the credit window
//   credit_exhausted  a chunk at the FIFO head with the credit window
//                     genuinely exhausted (inbox budget)
//   egress_hol        waiting for the source egress NIC while it serves a
//                     transfer to a *different* destination
//   egress_queue      waiting for the egress NIC behind a same-destination
//                     transfer (or behind same-destination chunks in a DRR
//                     egress queue)
//   drr_wait          DRR only: the chunk was ready but lost the pick to
//                     the quantum cursor (its destination's deficit was
//                     still too small when the NIC chose other traffic)
//   ingress_queue     waiting for the destination's ingress NIC
//   wire              on the wire (fault retries included)
//
// Under --egress-sched=drr the fabric records a piecewise classification of
// each chunk's NIC wait (ChunkTiming::egress_marks) at every scheduler
// decision, and the walk emits one segment per mark — so egress_hol /
// egress_queue / drr_wait / ingress_queue are charged against the DRR
// scheduler's actual dependency edges, with the same telescoping exactness.
//
// The walk blames the *waiter*, never the occupant: when the critical chunk
// waits on a busy NIC, the report charges the wait to that NIC's queue
// class rather than recursing into whichever transfer held it. That keeps
// the chain a path (exact attribution) while the per-resource buckets still
// name the contended device.
//
// Building a report is passive: it only reads the fabric's always-on timing
// records, so traffic, checksums and EXPLAIN output are byte-identical with
// blame enabled, and repeated runs render byte-identical reports.
#ifndef TJ_OBS_BLAME_H_
#define TJ_OBS_BLAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tj {

class PipelinedFabric;

/// Wait-class identifiers, in fixed render order.
enum class BlameClass : int {
  kCompute = 0,
  kCpuQueue,
  kCreditHol,
  kCreditExhausted,
  kEgressHol,
  kEgressQueue,
  kDrrWait,
  kIngressQueue,
  kWire,
};
inline constexpr int kNumBlameClasses = 9;
const char* BlameClassName(BlameClass c);
/// The contended resource a class blames: cpu, link, nic.egress,
/// nic.ingress or wire.
const char* BlameClassResource(BlameClass c);

/// One aggregated (node, resource, stage, wait-class) bucket.
struct BlameBucket {
  uint32_t node = 0;
  std::string resource;
  std::string stage;
  std::string wait_class;
  int64_t micros = 0;
};

/// One raw critical-path segment (for the top-K edge listing).
struct BlameEdge {
  int64_t start_us = 0;
  int64_t end_us = 0;
  uint32_t node = 0;
  std::string resource;
  std::string stage;
  std::string wait_class;
  /// Task label, or "<type> s<src>->d<dst>" for chunk segments.
  std::string label;
};

struct BlameReport {
  std::string algorithm;
  uint32_t num_nodes = 0;
  /// The fabric's makespan, rounded exactly like pipeline.makespan_us.
  int64_t makespan_us = 0;
  /// Sum of all bucket micros; the reconciliation invariant is
  /// bucket_sum_us == makespan_us (zero tolerance).
  int64_t bucket_sum_us = 0;
  bool reconciled = false;
  /// Critical-path segments with nonzero rounded duration.
  int64_t path_segments = 0;
  /// Per-class totals, indexed by BlameClass.
  int64_t class_us[kNumBlameClasses] = {};
  /// Head-of-line share: credit_hol + egress_hol (the ROADMAP follow-up).
  int64_t hol_us = 0;
  std::vector<BlameBucket> buckets;    ///< Sorted by micros desc.
  std::vector<BlameEdge> top_edges;    ///< Top-K by duration desc.
};

/// Walks the dependency chain backward from the fabric's last completion
/// and aggregates the blame buckets. Requires a completed Run(); intended
/// for successful runs (an aborted run reconciles only up to the walked
/// root's completion time, and `reconciled` reports whether the invariant
/// held).
BlameReport BuildBlameReport(const PipelinedFabric& fabric,
                             size_t top_k = 20);

/// Deterministic single-object JSON rendering.
std::string ToJson(const BlameReport& report);
/// Human-readable table (class shares, top buckets, top edges).
std::string ToTable(const BlameReport& report);

}  // namespace tj

#endif  // TJ_OBS_BLAME_H_
