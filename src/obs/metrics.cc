#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "obs/text_escape.h"

namespace tj {

namespace {

template <typename Map>
auto& GetOrCreate(std::mutex& mu, Map& map, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = map[name];
  if (!slot) slot = std::make_unique<typename Map::mapped_type::element_type>();
  return *slot;
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only; dotted registry names
/// ("join.goodput_bytes") map onto underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return GetOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return GetOrCreate(mu_, gauges_, name);
}

TimerMetric& MetricsRegistry::timer(const std::string& name) {
  return GetOrCreate(mu_, timers_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return GetOrCreate(mu_, histograms_, name);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out.push_back(
        Sample{name, "counter", static_cast<double>(c->Value()), 0, {}});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back(Sample{name, "gauge", g->Value(), 0, {}});
  }
  for (const auto& [name, t] : timers_) {
    out.push_back(Sample{name, "timer", t->TotalSeconds(), t->Count(), {}});
  }
  for (const auto& [name, h] : histograms_) {
    Sample s{name, "histogram", h->Sum(), h->Count(), {}};
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      uint64_t n = h->BucketCount(b);
      if (n > 0) s.buckets.emplace_back(Histogram::BucketUpperBound(b), n);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) out += ", ";
    first = false;
    AppendJsonEscaped(s.name, &out);
    char buf[96];
    std::string_view kind(s.kind);
    if (kind == "timer") {
      std::snprintf(buf, sizeof(buf),
                    ": {\"kind\": \"timer\", \"total_seconds\": %.9g, "
                    "\"count\": %llu}",
                    s.value, static_cast<unsigned long long>(s.count));
      out += buf;
    } else if (kind == "histogram") {
      std::snprintf(buf, sizeof(buf),
                    ": {\"kind\": \"histogram\", \"sum\": %.9g, "
                    "\"count\": %llu, \"buckets\": {",
                    s.value, static_cast<unsigned long long>(s.count));
      out += buf;
      for (size_t i = 0; i < s.buckets.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s\"%.9g\": %llu", i ? ", " : "",
                      s.buckets[i].first,
                      static_cast<unsigned long long>(s.buckets[i].second));
        out += buf;
      }
      out += "}}";
    } else {
      std::snprintf(buf, sizeof(buf), ": {\"kind\": \"%s\", \"value\": %.9g}",
                    s.kind, s.value);
      out += buf;
    }
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::string out;
  char buf[160];
  for (const Sample& s : Snapshot()) {
    std::string name = PrometheusName(s.name);
    std::string_view kind(s.kind);
    if (kind == "counter") {
      std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %.9g\n",
                    name.c_str(), name.c_str(), s.value);
      out += buf;
    } else if (kind == "gauge") {
      std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %.9g\n",
                    name.c_str(), name.c_str(), s.value);
      out += buf;
    } else if (kind == "timer") {
      // A timer is a sum + count pair: Prometheus summary without quantiles.
      std::snprintf(buf, sizeof(buf),
                    "# TYPE %s summary\n%s_sum %.9g\n%s_count %llu\n",
                    name.c_str(), name.c_str(), s.value, name.c_str(),
                    static_cast<unsigned long long>(s.count));
      out += buf;
    } else if (kind == "histogram") {
      std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n", name.c_str());
      out += buf;
      uint64_t cumulative = 0;
      for (const auto& [bound, n] : s.buckets) {
        cumulative += n;
        std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.9g\"} %llu\n",
                      name.c_str(), bound,
                      static_cast<unsigned long long>(cumulative));
        out += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %.9g\n"
                    "%s_count %llu\n",
                    name.c_str(), static_cast<unsigned long long>(s.count),
                    name.c_str(), s.value, name.c_str(),
                    static_cast<unsigned long long>(s.count));
      out += buf;
    }
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace tj
