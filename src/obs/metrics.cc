#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace tj {

namespace {

template <typename Map>
auto& GetOrCreate(std::mutex& mu, Map& map, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = map[name];
  if (!slot) slot = std::make_unique<typename Map::mapped_type::element_type>();
  return *slot;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return GetOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return GetOrCreate(mu_, gauges_, name);
}

TimerMetric& MetricsRegistry::timer(const std::string& name) {
  return GetOrCreate(mu_, timers_, name);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out.push_back(Sample{name, "counter", static_cast<double>(c->Value()), 0});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back(Sample{name, "gauge", g->Value(), 0});
  }
  for (const auto& [name, t] : timers_) {
    out.push_back(Sample{name, "timer", t->TotalSeconds(), t->Count()});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(s.name, &out);
    char buf[96];
    if (std::string_view(s.kind) == "timer") {
      std::snprintf(buf, sizeof(buf),
                    ": {\"kind\": \"timer\", \"total_seconds\": %.9g, "
                    "\"count\": %llu}",
                    s.value, static_cast<unsigned long long>(s.count));
    } else {
      std::snprintf(buf, sizeof(buf), ": {\"kind\": \"%s\", \"value\": %.9g}",
                    s.kind, s.value);
    }
    out += buf;
  }
  out += "}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace tj
