// De-pipelined step breakdowns (paper Tables 3/4) as structured records.
//
// Every distributed join entry point attaches a StepProfile to its
// JoinResult: one StepRecord per barrier-separated phase, carrying the
// phase's measured wall seconds, its modeled network seconds, and the exact
// byte deltas the fabric accounted during that phase — goodput (first
// transmissions), local copies, and fault-recovery overhead (retransmits,
// duplicates, acks/nacks), each split by message type. The records are
// produced by Fabric's phase-scoped instrumentation (net/fabric.h), so
// algorithms label a phase once at RunPhase and the whole breakdown falls
// out; benches (table2/3/4) and `tjsim --profile` render the same records.
//
// Profiling is passive: it only reads the fabric's ledgers at each barrier,
// so enabling it changes neither join results nor any TrafficMatrix cell.
#ifndef TJ_OBS_STEP_PROFILE_H_
#define TJ_OBS_STEP_PROFILE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/time_model.h"
#include "net/traffic.h"

namespace tj {

class Fabric;

/// One de-pipelined join step: what one phase cost on the CPU side, what it
/// put on the (simulated) wire, and what the fault protocol did to recover.
struct StepRecord {
  std::string phase;

  /// Measured wall seconds of the phase's CPU-side work (all nodes,
  /// barrier-to-barrier — the de-pipelined step time of Tables 3/4).
  double wall_seconds = 0;
  /// Modeled transfer seconds for this step: the phase's busiest NIC
  /// through the time model's per-node bandwidth.
  double net_seconds = 0;

  /// First-transmission network bytes (src != dst) this phase.
  uint64_t goodput_bytes = 0;
  /// Local (src == dst) copy bytes this phase.
  uint64_t local_bytes = 0;
  /// Fault-recovery overhead this phase: retransmitted frames, injected
  /// duplicate copies and ack/nack control messages.
  uint64_t retransmit_bytes = 0;
  /// The phase's NIC bottleneck: max over nodes of max(ingress, egress)
  /// goodput during this phase.
  uint64_t max_node_bytes = 0;

  /// Recovery-protocol work during this phase's barrier.
  uint64_t retransmitted_frames = 0;
  uint64_t nack_messages = 0;
  /// Injected faults observed during this phase.
  uint64_t frames_dropped = 0;
  uint64_t frames_corrupted = 0;
  uint64_t frames_duplicated = 0;

  /// Per-message-type splits of the three byte ledgers above.
  std::array<uint64_t, kNumMessageTypes> network_bytes_by_type{};
  std::array<uint64_t, kNumMessageTypes> local_bytes_by_type{};
  std::array<uint64_t, kNumMessageTypes> retransmit_bytes_by_type{};

  uint64_t NetworkBytes(MessageType type) const {
    return network_bytes_by_type[static_cast<int>(type)];
  }
  uint64_t LocalBytes(MessageType type) const {
    return local_bytes_by_type[static_cast<int>(type)];
  }
  uint64_t RetransmitBytes(MessageType type) const {
    return retransmit_bytes_by_type[static_cast<int>(type)];
  }
};

/// The full per-step breakdown of one join run.
struct StepProfile {
  std::string algorithm;
  uint32_t num_nodes = 0;
  std::vector<StepRecord> steps;
  /// Whole-run NIC bottleneck (TrafficMatrix::MaxNodeBytes of the final
  /// matrix) — the basis of Table 2's network seconds. Not the sum of the
  /// per-step bottlenecks: different phases may stress different nodes.
  uint64_t run_max_node_bytes = 0;
  /// Wire bytes failed attempts burned before recovery replayed the query
  /// (the TrafficMatrix recovery ledger). Run-level, not per step: failed
  /// attempts have no surviving step records. Exactly zero on pristine
  /// runs — CI pins this via tools/check_profile_schema.py.
  uint64_t recovery_bytes = 0;

  double TotalWallSeconds() const;
  /// Sum of the per-step modeled transfer times (de-pipelined steps run
  /// back to back, so step times add).
  double TotalNetSeconds() const;
  uint64_t TotalGoodputBytes() const;
  uint64_t TotalLocalBytes() const;
  uint64_t TotalRetransmitBytes() const;
  uint64_t TotalRetransmittedFrames() const;
  uint64_t TotalNackMessages() const;

  /// Whole-run per-type sums across steps (equal to the final
  /// TrafficMatrix's per-type totals).
  uint64_t NetworkBytes(MessageType type) const;
  uint64_t LocalBytes(MessageType type) const;
  uint64_t RetransmitBytes(MessageType type) const;

  /// The named step, or nullptr. Phases are unique per run.
  const StepRecord* Find(const std::string& phase) const;
  /// The named step's wall seconds, or 0 if absent.
  double WallSeconds(const std::string& phase) const;

  /// Recomputes every step's net_seconds under a different bandwidth
  /// (tjsim's --bandwidth flag).
  void ApplyTimeModel(const NetworkTimeModel& model);

  /// Splices a prologue's steps (e.g. the semi-join filter exchange) in
  /// front of this profile's steps.
  void Prepend(const StepProfile& prologue);
};

/// Builds the profile for a completed run from the fabric's per-phase
/// instrumentation, labels it with `algorithm`, prices transfers with
/// `model`, and folds the run's totals into MetricsRegistry::Global()
/// ("join.runs", "join.phases", "join.goodput_bytes",
/// "join.retransmit_bytes", "join.wall_seconds", ...).
StepProfile BuildStepProfile(const std::string& algorithm,
                             const Fabric& fabric,
                             const NetworkTimeModel& model = {});

/// JSON object: algorithm, nodes, totals, and one record per step (nonzero
/// per-type byte splits included).
std::string ToJson(const StepProfile& profile);
/// CSV rows (no header): one line per step. Columns as in StepCsvHeader().
std::string ToCsv(const StepProfile& profile);
/// The CSV header line for ToCsv rows.
std::string StepCsvHeader();
/// Human-readable aligned table.
std::string ToTable(const StepProfile& profile);

}  // namespace tj

#endif  // TJ_OBS_STEP_PROFILE_H_
