// Process-wide metrics registry: named counters, gauges, timers and
// log-bucketed histograms.
//
// The simulator-side observability layer (obs/step_profile.h) produces one
// structured record per join phase; this registry is the complementary
// always-on aggregate view — how many joins ran, how many bytes moved, how
// much recovery traffic the fault protocol generated, how message sizes
// and phase times distribute — cheap enough to stay enabled on every run.
// All instruments are thread-safe and lock-free on the write path; reads
// are wait-free snapshots.
#ifndef TJ_OBS_METRICS_H_
#define TJ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tj {

namespace metrics_internal {

/// Relaxed add for atomic<double> (C++20's fetch_add on atomic<double> is
/// not universally available): a plain CAS loop.
inline void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace metrics_internal

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration plus observation count (mean = total / count).
/// Record is two relaxed atomic operations — no mutex, so phase workers on
/// every thread can report timings without serializing on the instrument.
class TimerMetric {
 public:
  void Record(double seconds) {
    metrics_internal::AtomicAdd(&total_seconds_, seconds);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double TotalSeconds() const {
    return total_seconds_.load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double MeanSeconds() const {
    uint64_t n = Count();
    return n > 0 ? TotalSeconds() / static_cast<double>(n) : 0.0;
  }

 private:
  std::atomic<double> total_seconds_{0.0};
  std::atomic<uint64_t> count_{0};
};

/// Log-bucketed (power-of-two) distribution: message sizes, phase wall/net
/// seconds, per-key schedule costs. Bucket b counts observations with
/// upper bound 2^(b - kBucketBias); the span 2^-32 .. 2^31 covers
/// microseconds through gigabytes. Observations are two relaxed atomics.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kBucketBias = 32;

  /// The bucket index for `value`: non-positive values land in bucket 0,
  /// values past the top range saturate into the last bucket.
  static int BucketFor(double value) {
    if (!(value > 0.0)) return 0;
    int exp = 0;
    double f = std::frexp(value, &exp);  // value = f * 2^exp, f in [0.5, 1).
    if (f == 0.5) --exp;  // Exact powers of two sit on their own bound.
    exp += kBucketBias;
    if (exp < 0) return 0;
    if (exp >= kNumBuckets) return kNumBuckets - 1;
    return exp;
  }

  /// Inclusive upper bound of bucket b (matches Prometheus `le` labels).
  static double BucketUpperBound(int bucket) {
    return std::ldexp(1.0, bucket - kBucketBias);
  }

  void Observe(double value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    metrics_internal::AtomicAdd(&sum_, value);
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

/// Registry of named instruments. Instruments are created on first use and
/// live for the registry's lifetime, so returned references stay valid.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimerMetric& timer(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One instrument's state at snapshot time.
  struct Sample {
    std::string name;
    const char* kind;  // "counter" | "gauge" | "timer" | "histogram"
    double value;      // counter/gauge value, timer/histogram total
    uint64_t count;    // timer/histogram observation count (0 otherwise)
    /// Histograms only: (upper bound, count) for each non-empty bucket.
    std::vector<std::pair<double, uint64_t>> buckets;
  };

  /// All instruments, sorted by name.
  std::vector<Sample> Snapshot() const;

  /// Snapshot as a JSON object keyed by instrument name.
  std::string ToJson() const;

  /// Snapshot in the Prometheus text exposition format (one family per
  /// instrument; '.' in names becomes '_'; histograms render cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count`). `tjsim --metrics`.
  std::string ToPrometheus() const;

  /// Drops every instrument (invalidates outstanding references); only for
  /// test isolation.
  void ResetForTest();

  /// The process-wide registry the join pipelines report into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<TimerMetric>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tj

#endif  // TJ_OBS_METRICS_H_
