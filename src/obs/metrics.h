// Process-wide metrics registry: named counters, gauges and timers.
//
// The simulator-side observability layer (obs/step_profile.h) produces one
// structured record per join phase; this registry is the complementary
// always-on aggregate view — how many joins ran, how many bytes moved, how
// much recovery traffic the fault protocol generated — cheap enough to stay
// enabled on every run. All instruments are thread-safe; reads are
// wait-free snapshots.
#ifndef TJ_OBS_METRICS_H_
#define TJ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tj {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration plus observation count (mean = total / count).
class TimerMetric {
 public:
  void Record(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    total_seconds_ += seconds;
    ++count_;
  }
  double TotalSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_seconds_;
  }
  uint64_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double MeanSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ > 0 ? total_seconds_ / static_cast<double>(count_) : 0.0;
  }

 private:
  mutable std::mutex mu_;
  double total_seconds_ = 0.0;
  uint64_t count_ = 0;
};

/// Registry of named instruments. Instruments are created on first use and
/// live for the registry's lifetime, so returned references stay valid.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimerMetric& timer(const std::string& name);

  /// One instrument's state at snapshot time.
  struct Sample {
    std::string name;
    const char* kind;  // "counter" | "gauge" | "timer"
    double value;      // counter/gauge value, timer total seconds
    uint64_t count;    // timer observation count (0 otherwise)
  };

  /// All instruments, sorted by name.
  std::vector<Sample> Snapshot() const;

  /// Snapshot as a JSON object keyed by instrument name.
  std::string ToJson() const;

  /// Drops every instrument (invalidates outstanding references); only for
  /// test isolation.
  void ResetForTest();

  /// The process-wide registry the join pipelines report into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<TimerMetric>> timers_;
};

}  // namespace tj

#endif  // TJ_OBS_METRICS_H_
