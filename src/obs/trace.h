// Low-overhead span tracer with Chrome trace-event export.
//
// One process-wide Tracer collects timestamped spans ("this node spent
// 1.2ms in phase X"), counter samples (per-node NIC ingress/egress) and
// instant events into per-thread buffers, and exports them as Chrome
// trace-event JSON (the `chrome://tracing` / Perfetto format): pid = the
// simulated node, tid = the OS thread that did the work.
//
// Tracing is strictly passive and off by default. The enabled check is a
// single relaxed atomic load; a disabled TraceSpan does no allocation, no
// clock read and no buffer write, so instrumentation can stay in the
// fabric, the thread pool and the kernels permanently. Enabling tracing
// must never change join results, traffic matrices or StepProfile bytes —
// the tracer only ever reads the clock and appends to its own buffers.
//
// Node attribution: the fabric sets a thread-local "current node" around
// each per-node phase work item (ScopedTraceNode), so spans opened further
// down the stack (kernels, ParallelFor batches) inherit the node that
// logically runs them. Work outside any node (the barrier itself, bench
// drivers) lands on a pseudo-process labeled by SetProcessLabel.
#ifndef TJ_OBS_TRACE_H_
#define TJ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tj {

/// "No simulated node": spans recorded outside ScopedTraceNode scopes.
/// Exported as its own pseudo-process (labeled "(host)" by default).
inline constexpr uint32_t kTraceNoNode = 0xFFFFFFFFu;

/// One recorded event. `phase` is the Chrome trace-event phase: 'X' is a
/// complete span (t_start + duration), 'C' a counter sample, 'i' an
/// instant event. `value` is the counter value ('C') or an optional row
/// count ('X', -1 = absent), rendered into the event's args.
struct TraceEvent {
  std::string name;
  const char* category = "";
  uint32_t node = kTraceNoNode;
  uint64_t tid = 0;
  int64_t t_start_us = 0;
  int64_t dur_us = 0;
  char phase = 'X';
  int64_t value = -1;
  /// Extra integer key/value pairs merged into the exported args object
  /// alongside rows/value. Used by the pipelined fabric's micro-batch spans
  /// (src, watermark, eos, range_lo, range_hi, ...).
  std::vector<std::pair<std::string, int64_t>> args;
};

/// Process-wide trace collector. All methods are thread-safe.
class Tracer {
 public:
  /// The tracer every TraceSpan records into (leaked singleton).
  static Tracer& Global();

  /// True when tracing is on. One relaxed atomic load — cheap enough for
  /// the hottest instrumented paths.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed) != 0;
  }
  void Enable() { enabled_.store(1, std::memory_order_relaxed); }
  void Disable() { enabled_.store(0, std::memory_order_relaxed); }

  /// Microseconds since the tracer's construction (steady clock).
  int64_t NowMicros() const;

  /// Appends one event to the calling thread's buffer. No-op unless
  /// enabled (callers on hot paths should check enabled() first and skip
  /// building the event at all).
  void Record(TraceEvent event);

  /// Records a counter sample (Chrome 'C' event): the exported track plots
  /// `value` over time for `name` under process `node`.
  void RecordCounter(const std::string& name, uint32_t node, int64_t value);

  /// Labels an exported process (Chrome process_name metadata). node may
  /// be a real node id or a pseudo-process id such as a fabric's
  /// num_nodes() barrier track.
  void SetProcessLabel(uint32_t node, std::string label);

  /// All recorded events merged across threads, ordered by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Number of events recorded so far.
  size_t EventCount() const;

  /// Drops all recorded events and process labels (not the enabled flag).
  void Clear();

  /// The full trace as Chrome trace-event JSON ({"traceEvents": [...]}),
  /// loadable in Perfetto / chrome://tracing. Timestamps in microseconds.
  std::string ToChromeJson() const;

 private:
  struct ThreadLog {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    uint64_t tid = 0;
  };

  Tracer() = default;
  ThreadLog* LogForThisThread();

  static std::atomic<int> enabled_;

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::map<uint32_t, std::string> process_labels_;
};

/// The simulated node the calling thread is currently working for
/// (kTraceNoNode outside any ScopedTraceNode scope).
uint32_t CurrentTraceNode();

/// RAII: attributes spans opened on this thread inside the scope to `node`.
class ScopedTraceNode {
 public:
  explicit ScopedTraceNode(uint32_t node);
  ~ScopedTraceNode();
  ScopedTraceNode(const ScopedTraceNode&) = delete;
  ScopedTraceNode& operator=(const ScopedTraceNode&) = delete;

 private:
  uint32_t saved_;
};

/// RAII complete-span scope. When tracing is disabled the constructor is a
/// single atomic load and the destructor a branch; nothing is copied.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string_view name)
      : TraceSpan(category, name, -1) {}
  /// `rows >= 0` is exported as args {"rows": rows}.
  TraceSpan(const char* category, std::string_view name, int64_t rows);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  int64_t start_us_ = -1;  // -1: disabled at construction, record nothing.
  int64_t rows_ = -1;
  std::string name_;
  const char* category_ = "";
};

}  // namespace tj

#endif  // TJ_OBS_TRACE_H_
