
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/schedule_optimality_test.cc" "tests/CMakeFiles/schedule_optimality_test.dir/core/schedule_optimality_test.cc.o" "gcc" "tests/CMakeFiles/schedule_optimality_test.dir/core/schedule_optimality_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/tj_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/tj_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tj_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
