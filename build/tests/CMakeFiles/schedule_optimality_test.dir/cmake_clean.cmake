file(REMOVE_RECURSE
  "CMakeFiles/schedule_optimality_test.dir/core/schedule_optimality_test.cc.o"
  "CMakeFiles/schedule_optimality_test.dir/core/schedule_optimality_test.cc.o.d"
  "schedule_optimality_test"
  "schedule_optimality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_optimality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
