# Empty compiler generated dependencies file for schedule_optimality_test.
# This may be replaced when dependencies are built.
