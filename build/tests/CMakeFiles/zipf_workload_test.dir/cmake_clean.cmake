file(REMOVE_RECURSE
  "CMakeFiles/zipf_workload_test.dir/workload/zipf_workload_test.cc.o"
  "CMakeFiles/zipf_workload_test.dir/workload/zipf_workload_test.cc.o.d"
  "zipf_workload_test"
  "zipf_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipf_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
