file(REMOVE_RECURSE
  "CMakeFiles/real_test.dir/workload/real_test.cc.o"
  "CMakeFiles/real_test.dir/workload/real_test.cc.o.d"
  "real_test"
  "real_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
