file(REMOVE_RECURSE
  "CMakeFiles/parallel_fabric_test.dir/integration/parallel_fabric_test.cc.o"
  "CMakeFiles/parallel_fabric_test.dir/integration/parallel_fabric_test.cc.o.d"
  "parallel_fabric_test"
  "parallel_fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
