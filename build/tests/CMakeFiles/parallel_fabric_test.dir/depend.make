# Empty dependencies file for parallel_fabric_test.
# This may be replaced when dependencies are built.
