file(REMOVE_RECURSE
  "CMakeFiles/track_join_test.dir/core/track_join_test.cc.o"
  "CMakeFiles/track_join_test.dir/core/track_join_test.cc.o.d"
  "track_join_test"
  "track_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
