# Empty dependencies file for bit_util_test.
# This may be replaced when dependencies are built.
