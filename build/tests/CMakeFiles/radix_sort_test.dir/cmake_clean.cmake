file(REMOVE_RECURSE
  "CMakeFiles/radix_sort_test.dir/exec/radix_sort_test.cc.o"
  "CMakeFiles/radix_sort_test.dir/exec/radix_sort_test.cc.o.d"
  "radix_sort_test"
  "radix_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
