file(REMOVE_RECURSE
  "CMakeFiles/reprice_test.dir/costmodel/reprice_test.cc.o"
  "CMakeFiles/reprice_test.dir/costmodel/reprice_test.cc.o.d"
  "reprice_test"
  "reprice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reprice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
