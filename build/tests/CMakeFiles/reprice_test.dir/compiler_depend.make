# Empty compiler generated dependencies file for reprice_test.
# This may be replaced when dependencies are built.
