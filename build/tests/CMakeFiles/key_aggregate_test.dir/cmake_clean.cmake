file(REMOVE_RECURSE
  "CMakeFiles/key_aggregate_test.dir/exec/key_aggregate_test.cc.o"
  "CMakeFiles/key_aggregate_test.dir/exec/key_aggregate_test.cc.o.d"
  "key_aggregate_test"
  "key_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
