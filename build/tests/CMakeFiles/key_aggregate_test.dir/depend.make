# Empty dependencies file for key_aggregate_test.
# This may be replaced when dependencies are built.
