# Empty dependencies file for streaming_track_join_test.
# This may be replaced when dependencies are built.
