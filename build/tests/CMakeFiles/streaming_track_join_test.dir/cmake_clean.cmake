file(REMOVE_RECURSE
  "CMakeFiles/streaming_track_join_test.dir/core/streaming_track_join_test.cc.o"
  "CMakeFiles/streaming_track_join_test.dir/core/streaming_track_join_test.cc.o.d"
  "streaming_track_join_test"
  "streaming_track_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_track_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
