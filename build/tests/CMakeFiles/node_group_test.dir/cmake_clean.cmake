file(REMOVE_RECURSE
  "CMakeFiles/node_group_test.dir/encoding/node_group_test.cc.o"
  "CMakeFiles/node_group_test.dir/encoding/node_group_test.cc.o.d"
  "node_group_test"
  "node_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
