# Empty compiler generated dependencies file for late_hash_join_test.
# This may be replaced when dependencies are built.
