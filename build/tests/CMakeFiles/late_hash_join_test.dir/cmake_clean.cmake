file(REMOVE_RECURSE
  "CMakeFiles/late_hash_join_test.dir/core/late_hash_join_test.cc.o"
  "CMakeFiles/late_hash_join_test.dir/core/late_hash_join_test.cc.o.d"
  "late_hash_join_test"
  "late_hash_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/late_hash_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
