# Empty dependencies file for class_estimator_test.
# This may be replaced when dependencies are built.
