file(REMOVE_RECURSE
  "CMakeFiles/class_estimator_test.dir/costmodel/class_estimator_test.cc.o"
  "CMakeFiles/class_estimator_test.dir/costmodel/class_estimator_test.cc.o.d"
  "class_estimator_test"
  "class_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
