file(REMOVE_RECURSE
  "CMakeFiles/prefix_group_test.dir/encoding/prefix_group_test.cc.o"
  "CMakeFiles/prefix_group_test.dir/encoding/prefix_group_test.cc.o.d"
  "prefix_group_test"
  "prefix_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
