# Empty compiler generated dependencies file for prefix_group_test.
# This may be replaced when dependencies are built.
