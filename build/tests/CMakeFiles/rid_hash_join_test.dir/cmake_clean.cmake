file(REMOVE_RECURSE
  "CMakeFiles/rid_hash_join_test.dir/core/rid_hash_join_test.cc.o"
  "CMakeFiles/rid_hash_join_test.dir/core/rid_hash_join_test.cc.o.d"
  "rid_hash_join_test"
  "rid_hash_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rid_hash_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
