# Empty dependencies file for rid_hash_join_test.
# This may be replaced when dependencies are built.
