file(REMOVE_RECURSE
  "CMakeFiles/hash_join_test.dir/baseline/hash_join_test.cc.o"
  "CMakeFiles/hash_join_test.dir/baseline/hash_join_test.cc.o.d"
  "hash_join_test"
  "hash_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
