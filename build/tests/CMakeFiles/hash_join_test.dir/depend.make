# Empty dependencies file for hash_join_test.
# This may be replaced when dependencies are built.
