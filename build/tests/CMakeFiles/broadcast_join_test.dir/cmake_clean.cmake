file(REMOVE_RECURSE
  "CMakeFiles/broadcast_join_test.dir/baseline/broadcast_join_test.cc.o"
  "CMakeFiles/broadcast_join_test.dir/baseline/broadcast_join_test.cc.o.d"
  "broadcast_join_test"
  "broadcast_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
