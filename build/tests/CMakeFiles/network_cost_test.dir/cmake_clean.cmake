file(REMOVE_RECURSE
  "CMakeFiles/network_cost_test.dir/costmodel/network_cost_test.cc.o"
  "CMakeFiles/network_cost_test.dir/costmodel/network_cost_test.cc.o.d"
  "network_cost_test"
  "network_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
