# Empty dependencies file for network_cost_test.
# This may be replaced when dependencies are built.
