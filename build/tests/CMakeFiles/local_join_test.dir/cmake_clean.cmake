file(REMOVE_RECURSE
  "CMakeFiles/local_join_test.dir/exec/local_join_test.cc.o"
  "CMakeFiles/local_join_test.dir/exec/local_join_test.cc.o.d"
  "local_join_test"
  "local_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
