file(REMOVE_RECURSE
  "CMakeFiles/materialize_test.dir/integration/materialize_test.cc.o"
  "CMakeFiles/materialize_test.dir/integration/materialize_test.cc.o.d"
  "materialize_test"
  "materialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
