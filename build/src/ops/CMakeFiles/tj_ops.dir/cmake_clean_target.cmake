file(REMOVE_RECURSE
  "libtj_ops.a"
)
