# Empty dependencies file for tj_ops.
# This may be replaced when dependencies are built.
