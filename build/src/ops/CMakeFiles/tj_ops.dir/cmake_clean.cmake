file(REMOVE_RECURSE
  "CMakeFiles/tj_ops.dir/aggregate.cc.o"
  "CMakeFiles/tj_ops.dir/aggregate.cc.o.d"
  "libtj_ops.a"
  "libtj_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
