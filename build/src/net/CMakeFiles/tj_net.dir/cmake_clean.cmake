file(REMOVE_RECURSE
  "CMakeFiles/tj_net.dir/fabric.cc.o"
  "CMakeFiles/tj_net.dir/fabric.cc.o.d"
  "CMakeFiles/tj_net.dir/message.cc.o"
  "CMakeFiles/tj_net.dir/message.cc.o.d"
  "CMakeFiles/tj_net.dir/traffic.cc.o"
  "CMakeFiles/tj_net.dir/traffic.cc.o.d"
  "libtj_net.a"
  "libtj_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
