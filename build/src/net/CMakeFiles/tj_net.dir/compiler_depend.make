# Empty compiler generated dependencies file for tj_net.
# This may be replaced when dependencies are built.
