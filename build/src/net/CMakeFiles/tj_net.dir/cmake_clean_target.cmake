file(REMOVE_RECURSE
  "libtj_net.a"
)
