file(REMOVE_RECURSE
  "libtj_exec.a"
)
