# Empty compiler generated dependencies file for tj_exec.
# This may be replaced when dependencies are built.
