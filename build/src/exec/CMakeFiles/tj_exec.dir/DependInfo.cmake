
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/key_aggregate.cc" "src/exec/CMakeFiles/tj_exec.dir/key_aggregate.cc.o" "gcc" "src/exec/CMakeFiles/tj_exec.dir/key_aggregate.cc.o.d"
  "/root/repo/src/exec/local_join.cc" "src/exec/CMakeFiles/tj_exec.dir/local_join.cc.o" "gcc" "src/exec/CMakeFiles/tj_exec.dir/local_join.cc.o.d"
  "/root/repo/src/exec/partition.cc" "src/exec/CMakeFiles/tj_exec.dir/partition.cc.o" "gcc" "src/exec/CMakeFiles/tj_exec.dir/partition.cc.o.d"
  "/root/repo/src/exec/radix_sort.cc" "src/exec/CMakeFiles/tj_exec.dir/radix_sort.cc.o" "gcc" "src/exec/CMakeFiles/tj_exec.dir/radix_sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/tj_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
