file(REMOVE_RECURSE
  "CMakeFiles/tj_exec.dir/key_aggregate.cc.o"
  "CMakeFiles/tj_exec.dir/key_aggregate.cc.o.d"
  "CMakeFiles/tj_exec.dir/local_join.cc.o"
  "CMakeFiles/tj_exec.dir/local_join.cc.o.d"
  "CMakeFiles/tj_exec.dir/partition.cc.o"
  "CMakeFiles/tj_exec.dir/partition.cc.o.d"
  "CMakeFiles/tj_exec.dir/radix_sort.cc.o"
  "CMakeFiles/tj_exec.dir/radix_sort.cc.o.d"
  "libtj_exec.a"
  "libtj_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
