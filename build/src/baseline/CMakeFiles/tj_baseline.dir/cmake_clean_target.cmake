file(REMOVE_RECURSE
  "libtj_baseline.a"
)
