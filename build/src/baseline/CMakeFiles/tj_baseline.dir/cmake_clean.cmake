file(REMOVE_RECURSE
  "CMakeFiles/tj_baseline.dir/broadcast_join.cc.o"
  "CMakeFiles/tj_baseline.dir/broadcast_join.cc.o.d"
  "CMakeFiles/tj_baseline.dir/hash_join.cc.o"
  "CMakeFiles/tj_baseline.dir/hash_join.cc.o.d"
  "libtj_baseline.a"
  "libtj_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
