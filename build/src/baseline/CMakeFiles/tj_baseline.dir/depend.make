# Empty dependencies file for tj_baseline.
# This may be replaced when dependencies are built.
