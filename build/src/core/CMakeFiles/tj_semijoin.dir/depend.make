# Empty dependencies file for tj_semijoin.
# This may be replaced when dependencies are built.
