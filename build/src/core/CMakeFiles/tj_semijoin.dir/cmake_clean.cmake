file(REMOVE_RECURSE
  "CMakeFiles/tj_semijoin.dir/semi_join.cc.o"
  "CMakeFiles/tj_semijoin.dir/semi_join.cc.o.d"
  "libtj_semijoin.a"
  "libtj_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
