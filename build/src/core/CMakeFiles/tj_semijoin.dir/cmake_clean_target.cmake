file(REMOVE_RECURSE
  "libtj_semijoin.a"
)
