
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/join_types.cc" "src/core/CMakeFiles/tj_core.dir/join_types.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/join_types.cc.o.d"
  "/root/repo/src/core/late_hash_join.cc" "src/core/CMakeFiles/tj_core.dir/late_hash_join.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/late_hash_join.cc.o.d"
  "/root/repo/src/core/rid_hash_join.cc" "src/core/CMakeFiles/tj_core.dir/rid_hash_join.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/rid_hash_join.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/tj_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/streaming_track_join.cc" "src/core/CMakeFiles/tj_core.dir/streaming_track_join.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/streaming_track_join.cc.o.d"
  "/root/repo/src/core/track_join.cc" "src/core/CMakeFiles/tj_core.dir/track_join.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/track_join.cc.o.d"
  "/root/repo/src/core/tracker.cc" "src/core/CMakeFiles/tj_core.dir/tracker.cc.o" "gcc" "src/core/CMakeFiles/tj_core.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/tj_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/tj_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tj_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
