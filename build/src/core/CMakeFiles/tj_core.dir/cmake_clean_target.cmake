file(REMOVE_RECURSE
  "libtj_core.a"
)
