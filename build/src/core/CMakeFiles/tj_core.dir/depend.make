# Empty dependencies file for tj_core.
# This may be replaced when dependencies are built.
