file(REMOVE_RECURSE
  "CMakeFiles/tj_core.dir/join_types.cc.o"
  "CMakeFiles/tj_core.dir/join_types.cc.o.d"
  "CMakeFiles/tj_core.dir/late_hash_join.cc.o"
  "CMakeFiles/tj_core.dir/late_hash_join.cc.o.d"
  "CMakeFiles/tj_core.dir/rid_hash_join.cc.o"
  "CMakeFiles/tj_core.dir/rid_hash_join.cc.o.d"
  "CMakeFiles/tj_core.dir/schedule.cc.o"
  "CMakeFiles/tj_core.dir/schedule.cc.o.d"
  "CMakeFiles/tj_core.dir/streaming_track_join.cc.o"
  "CMakeFiles/tj_core.dir/streaming_track_join.cc.o.d"
  "CMakeFiles/tj_core.dir/track_join.cc.o"
  "CMakeFiles/tj_core.dir/track_join.cc.o.d"
  "CMakeFiles/tj_core.dir/tracker.cc.o"
  "CMakeFiles/tj_core.dir/tracker.cc.o.d"
  "libtj_core.a"
  "libtj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
