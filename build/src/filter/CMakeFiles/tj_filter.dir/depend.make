# Empty dependencies file for tj_filter.
# This may be replaced when dependencies are built.
