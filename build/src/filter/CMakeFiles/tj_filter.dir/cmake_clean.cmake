file(REMOVE_RECURSE
  "CMakeFiles/tj_filter.dir/bloom.cc.o"
  "CMakeFiles/tj_filter.dir/bloom.cc.o.d"
  "libtj_filter.a"
  "libtj_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
