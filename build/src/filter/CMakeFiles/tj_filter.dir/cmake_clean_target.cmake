file(REMOVE_RECURSE
  "libtj_filter.a"
)
