# Empty dependencies file for tj_storage.
# This may be replaced when dependencies are built.
