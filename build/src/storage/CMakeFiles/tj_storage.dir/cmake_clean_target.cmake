file(REMOVE_RECURSE
  "libtj_storage.a"
)
