file(REMOVE_RECURSE
  "CMakeFiles/tj_storage.dir/schema.cc.o"
  "CMakeFiles/tj_storage.dir/schema.cc.o.d"
  "CMakeFiles/tj_storage.dir/table.cc.o"
  "CMakeFiles/tj_storage.dir/table.cc.o.d"
  "CMakeFiles/tj_storage.dir/tuple_block.cc.o"
  "CMakeFiles/tj_storage.dir/tuple_block.cc.o.d"
  "libtj_storage.a"
  "libtj_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
