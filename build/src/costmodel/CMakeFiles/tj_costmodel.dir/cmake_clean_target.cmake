file(REMOVE_RECURSE
  "libtj_costmodel.a"
)
