file(REMOVE_RECURSE
  "CMakeFiles/tj_costmodel.dir/class_estimator.cc.o"
  "CMakeFiles/tj_costmodel.dir/class_estimator.cc.o.d"
  "CMakeFiles/tj_costmodel.dir/network_cost.cc.o"
  "CMakeFiles/tj_costmodel.dir/network_cost.cc.o.d"
  "CMakeFiles/tj_costmodel.dir/optimizer.cc.o"
  "CMakeFiles/tj_costmodel.dir/optimizer.cc.o.d"
  "CMakeFiles/tj_costmodel.dir/pipeline.cc.o"
  "CMakeFiles/tj_costmodel.dir/pipeline.cc.o.d"
  "CMakeFiles/tj_costmodel.dir/reprice.cc.o"
  "CMakeFiles/tj_costmodel.dir/reprice.cc.o.d"
  "libtj_costmodel.a"
  "libtj_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
