# Empty dependencies file for tj_costmodel.
# This may be replaced when dependencies are built.
