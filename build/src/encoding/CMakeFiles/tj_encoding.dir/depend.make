# Empty dependencies file for tj_encoding.
# This may be replaced when dependencies are built.
