file(REMOVE_RECURSE
  "CMakeFiles/tj_encoding.dir/delta.cc.o"
  "CMakeFiles/tj_encoding.dir/delta.cc.o.d"
  "CMakeFiles/tj_encoding.dir/dictionary.cc.o"
  "CMakeFiles/tj_encoding.dir/dictionary.cc.o.d"
  "CMakeFiles/tj_encoding.dir/encoding.cc.o"
  "CMakeFiles/tj_encoding.dir/encoding.cc.o.d"
  "CMakeFiles/tj_encoding.dir/node_group.cc.o"
  "CMakeFiles/tj_encoding.dir/node_group.cc.o.d"
  "CMakeFiles/tj_encoding.dir/prefix_group.cc.o"
  "CMakeFiles/tj_encoding.dir/prefix_group.cc.o.d"
  "libtj_encoding.a"
  "libtj_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
