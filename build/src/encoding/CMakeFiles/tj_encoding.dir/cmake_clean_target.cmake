file(REMOVE_RECURSE
  "libtj_encoding.a"
)
