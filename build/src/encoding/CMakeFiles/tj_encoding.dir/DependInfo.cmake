
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/delta.cc" "src/encoding/CMakeFiles/tj_encoding.dir/delta.cc.o" "gcc" "src/encoding/CMakeFiles/tj_encoding.dir/delta.cc.o.d"
  "/root/repo/src/encoding/dictionary.cc" "src/encoding/CMakeFiles/tj_encoding.dir/dictionary.cc.o" "gcc" "src/encoding/CMakeFiles/tj_encoding.dir/dictionary.cc.o.d"
  "/root/repo/src/encoding/encoding.cc" "src/encoding/CMakeFiles/tj_encoding.dir/encoding.cc.o" "gcc" "src/encoding/CMakeFiles/tj_encoding.dir/encoding.cc.o.d"
  "/root/repo/src/encoding/node_group.cc" "src/encoding/CMakeFiles/tj_encoding.dir/node_group.cc.o" "gcc" "src/encoding/CMakeFiles/tj_encoding.dir/node_group.cc.o.d"
  "/root/repo/src/encoding/prefix_group.cc" "src/encoding/CMakeFiles/tj_encoding.dir/prefix_group.cc.o" "gcc" "src/encoding/CMakeFiles/tj_encoding.dir/prefix_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
