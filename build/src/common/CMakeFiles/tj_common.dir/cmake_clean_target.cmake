file(REMOVE_RECURSE
  "libtj_common.a"
)
