file(REMOVE_RECURSE
  "CMakeFiles/tj_common.dir/logging.cc.o"
  "CMakeFiles/tj_common.dir/logging.cc.o.d"
  "CMakeFiles/tj_common.dir/rng.cc.o"
  "CMakeFiles/tj_common.dir/rng.cc.o.d"
  "CMakeFiles/tj_common.dir/status.cc.o"
  "CMakeFiles/tj_common.dir/status.cc.o.d"
  "CMakeFiles/tj_common.dir/thread_pool.cc.o"
  "CMakeFiles/tj_common.dir/thread_pool.cc.o.d"
  "libtj_common.a"
  "libtj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
