# Empty compiler generated dependencies file for tj_common.
# This may be replaced when dependencies are built.
