file(REMOVE_RECURSE
  "libtj_workload.a"
)
