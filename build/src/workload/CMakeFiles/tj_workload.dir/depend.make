# Empty dependencies file for tj_workload.
# This may be replaced when dependencies are built.
