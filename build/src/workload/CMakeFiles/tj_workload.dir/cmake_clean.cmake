file(REMOVE_RECURSE
  "CMakeFiles/tj_workload.dir/generator.cc.o"
  "CMakeFiles/tj_workload.dir/generator.cc.o.d"
  "CMakeFiles/tj_workload.dir/real.cc.o"
  "CMakeFiles/tj_workload.dir/real.cc.o.d"
  "libtj_workload.a"
  "libtj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
