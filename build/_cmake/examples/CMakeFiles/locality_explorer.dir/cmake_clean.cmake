file(REMOVE_RECURSE
  "../../examples/locality_explorer"
  "../../examples/locality_explorer.pdb"
  "CMakeFiles/locality_explorer.dir/locality_explorer.cpp.o"
  "CMakeFiles/locality_explorer.dir/locality_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
