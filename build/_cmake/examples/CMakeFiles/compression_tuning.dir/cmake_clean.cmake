file(REMOVE_RECURSE
  "../../examples/compression_tuning"
  "../../examples/compression_tuning.pdb"
  "CMakeFiles/compression_tuning.dir/compression_tuning.cpp.o"
  "CMakeFiles/compression_tuning.dir/compression_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
