# Empty compiler generated dependencies file for compression_tuning.
# This may be replaced when dependencies are built.
