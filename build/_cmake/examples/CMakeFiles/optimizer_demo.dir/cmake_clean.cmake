file(REMOVE_RECURSE
  "../../examples/optimizer_demo"
  "../../examples/optimizer_demo.pdb"
  "CMakeFiles/optimizer_demo.dir/optimizer_demo.cpp.o"
  "CMakeFiles/optimizer_demo.dir/optimizer_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
