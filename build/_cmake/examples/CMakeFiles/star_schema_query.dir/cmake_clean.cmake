file(REMOVE_RECURSE
  "../../examples/star_schema_query"
  "../../examples/star_schema_query.pdb"
  "CMakeFiles/star_schema_query.dir/star_schema_query.cpp.o"
  "CMakeFiles/star_schema_query.dir/star_schema_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
