# Empty compiler generated dependencies file for star_schema_query.
# This may be replaced when dependencies are built.
