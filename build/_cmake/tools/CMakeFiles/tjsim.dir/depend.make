# Empty dependencies file for tjsim.
# This may be replaced when dependencies are built.
