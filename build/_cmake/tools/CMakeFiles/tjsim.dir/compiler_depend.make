# Empty compiler generated dependencies file for tjsim.
# This may be replaced when dependencies are built.
