file(REMOVE_RECURSE
  "../../tools/tjsim"
  "../../tools/tjsim.pdb"
  "CMakeFiles/tjsim.dir/tjsim.cpp.o"
  "CMakeFiles/tjsim.dir/tjsim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tjsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
