file(REMOVE_RECURSE
  "../../bench/ablation_pipelining"
  "../../bench/ablation_pipelining.pdb"
  "CMakeFiles/ablation_pipelining.dir/ablation_pipelining.cpp.o"
  "CMakeFiles/ablation_pipelining.dir/ablation_pipelining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
