# Empty dependencies file for fig5_intra_collocation.
# This may be replaced when dependencies are built.
