file(REMOVE_RECURSE
  "../../bench/fig5_intra_collocation"
  "../../bench/fig5_intra_collocation.pdb"
  "CMakeFiles/fig5_intra_collocation.dir/fig5_intra_collocation.cpp.o"
  "CMakeFiles/fig5_intra_collocation.dir/fig5_intra_collocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_intra_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
