
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_intra_collocation.cpp" "_cmake/bench/CMakeFiles/fig5_intra_collocation.dir/fig5_intra_collocation.cpp.o" "gcc" "_cmake/bench/CMakeFiles/fig5_intra_collocation.dir/fig5_intra_collocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tj_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/tj_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/tj_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/tj_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tj_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
