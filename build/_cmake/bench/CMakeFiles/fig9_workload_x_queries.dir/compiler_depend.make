# Empty compiler generated dependencies file for fig9_workload_x_queries.
# This may be replaced when dependencies are built.
