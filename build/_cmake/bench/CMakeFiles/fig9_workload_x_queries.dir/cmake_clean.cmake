file(REMOVE_RECURSE
  "../../bench/fig9_workload_x_queries"
  "../../bench/fig9_workload_x_queries.pdb"
  "CMakeFiles/fig9_workload_x_queries.dir/fig9_workload_x_queries.cpp.o"
  "CMakeFiles/fig9_workload_x_queries.dir/fig9_workload_x_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_workload_x_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
