file(REMOVE_RECURSE
  "../../bench/table2_execution_times"
  "../../bench/table2_execution_times.pdb"
  "CMakeFiles/table2_execution_times.dir/table2_execution_times.cpp.o"
  "CMakeFiles/table2_execution_times.dir/table2_execution_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_execution_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
