# Empty compiler generated dependencies file for table2_execution_times.
# This may be replaced when dependencies are built.
