file(REMOVE_RECURSE
  "../../bench/ablation_scaling"
  "../../bench/ablation_scaling.pdb"
  "CMakeFiles/ablation_scaling.dir/ablation_scaling.cpp.o"
  "CMakeFiles/ablation_scaling.dir/ablation_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
