file(REMOVE_RECURSE
  "../../bench/ablation_skew"
  "../../bench/ablation_skew.pdb"
  "CMakeFiles/ablation_skew.dir/ablation_skew.cpp.o"
  "CMakeFiles/ablation_skew.dir/ablation_skew.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
