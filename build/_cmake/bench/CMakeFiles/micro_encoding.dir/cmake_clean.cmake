file(REMOVE_RECURSE
  "../../bench/micro_encoding"
  "../../bench/micro_encoding.pdb"
  "CMakeFiles/micro_encoding.dir/micro_encoding.cpp.o"
  "CMakeFiles/micro_encoding.dir/micro_encoding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
