# Empty compiler generated dependencies file for table1_workload_x_schema.
# This may be replaced when dependencies are built.
