file(REMOVE_RECURSE
  "../../bench/table1_workload_x_schema"
  "../../bench/table1_workload_x_schema.pdb"
  "CMakeFiles/table1_workload_x_schema.dir/table1_workload_x_schema.cpp.o"
  "CMakeFiles/table1_workload_x_schema.dir/table1_workload_x_schema.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_workload_x_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
