file(REMOVE_RECURSE
  "../../bench/micro_bloom"
  "../../bench/micro_bloom.pdb"
  "CMakeFiles/micro_bloom.dir/micro_bloom.cpp.o"
  "CMakeFiles/micro_bloom.dir/micro_bloom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
