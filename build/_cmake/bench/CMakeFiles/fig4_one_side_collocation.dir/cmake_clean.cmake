file(REMOVE_RECURSE
  "../../bench/fig4_one_side_collocation"
  "../../bench/fig4_one_side_collocation.pdb"
  "CMakeFiles/fig4_one_side_collocation.dir/fig4_one_side_collocation.cpp.o"
  "CMakeFiles/fig4_one_side_collocation.dir/fig4_one_side_collocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_one_side_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
