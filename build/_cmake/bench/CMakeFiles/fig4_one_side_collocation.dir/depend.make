# Empty dependencies file for fig4_one_side_collocation.
# This may be replaced when dependencies are built.
