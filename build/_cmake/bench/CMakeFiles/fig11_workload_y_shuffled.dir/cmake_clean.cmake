file(REMOVE_RECURSE
  "../../bench/fig11_workload_y_shuffled"
  "../../bench/fig11_workload_y_shuffled.pdb"
  "CMakeFiles/fig11_workload_y_shuffled.dir/fig11_workload_y_shuffled.cpp.o"
  "CMakeFiles/fig11_workload_y_shuffled.dir/fig11_workload_y_shuffled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_workload_y_shuffled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
