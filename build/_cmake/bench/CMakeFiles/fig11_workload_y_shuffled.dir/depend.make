# Empty dependencies file for fig11_workload_y_shuffled.
# This may be replaced when dependencies are built.
