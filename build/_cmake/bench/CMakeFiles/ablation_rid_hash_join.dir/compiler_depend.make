# Empty compiler generated dependencies file for ablation_rid_hash_join.
# This may be replaced when dependencies are built.
