file(REMOVE_RECURSE
  "../../bench/ablation_rid_hash_join"
  "../../bench/ablation_rid_hash_join.pdb"
  "CMakeFiles/ablation_rid_hash_join.dir/ablation_rid_hash_join.cpp.o"
  "CMakeFiles/ablation_rid_hash_join.dir/ablation_rid_hash_join.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rid_hash_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
