# Empty compiler generated dependencies file for fig6_inter_collocation.
# This may be replaced when dependencies are built.
