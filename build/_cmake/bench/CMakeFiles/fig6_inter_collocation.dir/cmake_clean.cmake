file(REMOVE_RECURSE
  "../../bench/fig6_inter_collocation"
  "../../bench/fig6_inter_collocation.pdb"
  "CMakeFiles/fig6_inter_collocation.dir/fig6_inter_collocation.cpp.o"
  "CMakeFiles/fig6_inter_collocation.dir/fig6_inter_collocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_inter_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
