file(REMOVE_RECURSE
  "../../bench/table4_track_join_steps"
  "../../bench/table4_track_join_steps.pdb"
  "CMakeFiles/table4_track_join_steps.dir/table4_track_join_steps.cpp.o"
  "CMakeFiles/table4_track_join_steps.dir/table4_track_join_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_track_join_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
