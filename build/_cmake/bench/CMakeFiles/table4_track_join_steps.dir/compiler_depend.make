# Empty compiler generated dependencies file for table4_track_join_steps.
# This may be replaced when dependencies are built.
