# Empty compiler generated dependencies file for micro_radix_sort.
# This may be replaced when dependencies are built.
