file(REMOVE_RECURSE
  "../../bench/micro_radix_sort"
  "../../bench/micro_radix_sort.pdb"
  "CMakeFiles/micro_radix_sort.dir/micro_radix_sort.cpp.o"
  "CMakeFiles/micro_radix_sort.dir/micro_radix_sort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_radix_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
