file(REMOVE_RECURSE
  "../../bench/fig8_workload_x_shuffled"
  "../../bench/fig8_workload_x_shuffled.pdb"
  "CMakeFiles/fig8_workload_x_shuffled.dir/fig8_workload_x_shuffled.cpp.o"
  "CMakeFiles/fig8_workload_x_shuffled.dir/fig8_workload_x_shuffled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_workload_x_shuffled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
