# Empty compiler generated dependencies file for fig8_workload_x_shuffled.
# This may be replaced when dependencies are built.
