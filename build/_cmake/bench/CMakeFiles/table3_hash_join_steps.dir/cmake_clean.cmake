file(REMOVE_RECURSE
  "../../bench/table3_hash_join_steps"
  "../../bench/table3_hash_join_steps.pdb"
  "CMakeFiles/table3_hash_join_steps.dir/table3_hash_join_steps.cpp.o"
  "CMakeFiles/table3_hash_join_steps.dir/table3_hash_join_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hash_join_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
