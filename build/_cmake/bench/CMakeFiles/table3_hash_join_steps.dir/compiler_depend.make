# Empty compiler generated dependencies file for table3_hash_join_steps.
# This may be replaced when dependencies are built.
