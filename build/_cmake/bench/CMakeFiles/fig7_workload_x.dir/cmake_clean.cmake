file(REMOVE_RECURSE
  "../../bench/fig7_workload_x"
  "../../bench/fig7_workload_x.pdb"
  "CMakeFiles/fig7_workload_x.dir/fig7_workload_x.cpp.o"
  "CMakeFiles/fig7_workload_x.dir/fig7_workload_x.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_workload_x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
