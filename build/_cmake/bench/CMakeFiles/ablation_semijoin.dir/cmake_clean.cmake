file(REMOVE_RECURSE
  "../../bench/ablation_semijoin"
  "../../bench/ablation_semijoin.pdb"
  "CMakeFiles/ablation_semijoin.dir/ablation_semijoin.cpp.o"
  "CMakeFiles/ablation_semijoin.dir/ablation_semijoin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
