# Empty compiler generated dependencies file for ablation_semijoin.
# This may be replaced when dependencies are built.
