file(REMOVE_RECURSE
  "../../bench/fig10_workload_y"
  "../../bench/fig10_workload_y.pdb"
  "CMakeFiles/fig10_workload_y.dir/fig10_workload_y.cpp.o"
  "CMakeFiles/fig10_workload_y.dir/fig10_workload_y.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_workload_y.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
