# Empty compiler generated dependencies file for fig10_workload_y.
# This may be replaced when dependencies are built.
