file(REMOVE_RECURSE
  "../../bench/fig3_unique_keys"
  "../../bench/fig3_unique_keys.pdb"
  "CMakeFiles/fig3_unique_keys.dir/fig3_unique_keys.cpp.o"
  "CMakeFiles/fig3_unique_keys.dir/fig3_unique_keys.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_unique_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
