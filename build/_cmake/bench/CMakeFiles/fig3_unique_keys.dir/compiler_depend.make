# Empty compiler generated dependencies file for fig3_unique_keys.
# This may be replaced when dependencies are built.
