#!/usr/bin/env python3
"""Validates the tracing/EXPLAIN/blame observability interfaces.

Three modes, mirroring check_profile_schema.py:

  check_trace_schema.py trace FILE   # Chrome trace JSON from `tjsim --trace=`
  check_trace_schema.py explain      # `tjsim --explain=json` read from stdin
  check_trace_schema.py blame        # `tjsim --blame=json` read from stdin

With `trace FILE --pipeline` the file must additionally carry the
event-driven fabric's micro-batch instrumentation: "mb"-category spans,
non-negative flow.credit.* / flow.queued.* counters, 0/1 busy tracks for
every modeled resource (cpu.busy, nic.egress.busy, nic.ingress.busy),
cumulative nic.ingress_bytes/nic.egress_bytes counters matching the barrier
fabric's schema, non-negative per-destination egress.queued.* / drr.deficit.*
scheduler tracks (required with --expect-drr, i.e. for --egress-sched=drr
runs), per-node schedule spans whose [range_lo, range_hi) key
ranges are contiguous, monotone and closed by a single range_hi=-1 sentinel,
and — the causality invariant — every scheduled range preceded on its node
by tracking spans from all sources whose watermarks cover it (or that
already hit end-of-stream). `--allow-partial` relaxes the stream-completion
requirements (schedule spans may be missing or unterminated) for traces of
*failed* runs — e.g. a crash-faulted pipelined run — while still enforcing
every event- and counter-level invariant.

The blame mode checks `tjsim --blame=json` reports: schema, non-negative
buckets, valid wait classes and resources, and the reconciliation invariant
— per-class totals and per-bucket totals each sum to makespan_us exactly.

The trace file must be a Chrome trace-event object (`{"traceEvents": [...]}`)
that Perfetto can load: only complete spans (X), counters (C), instants (i)
and metadata (M), integer pid/tid/ts, non-negative durations, at least one
"phase"-category span and one NIC counter, and process_name metadata so the
per-node lanes are labeled. The explain output must be a non-empty array of
per-algorithm audits whose decision-class byte totals reconcile exactly with
the audited scheduled bytes.
"""
import json
import sys

ALLOWED_PHASES = {"X", "C", "M", "i"}
EXPLAIN_CLASSES = ("free", "broadcast_r_to_s", "broadcast_s_to_r", "migrated",
                   "failover", "hot_split")
EXPLAIN_KEYS = {
    "algorithm": str,
    "total_keys": int,
    "classes": dict,
    "scheduled_bytes": int,
    "traffic_scheduled_bytes": int,
    "tracking_bytes": int,
    "traffic_total_bytes": int,
    "matches_traffic": bool,
    "hash_join_bytes": int,
    "saved_vs_hash_bytes": int,
    "top_keys": list,
}
TOP_KEY_KEYS = {
    "key": int,
    "class": str,
    "chosen_dir": str,
    "chosen_cost": int,
    "chosen_migrations": int,
    "chosen_split": int,
    "broadcast_cost_r_to_s": int,
    "broadcast_cost_s_to_r": int,
    "plan_cost_r_to_s": int,
    "plan_cost_s_to_r": int,
    "hash_join_cost": int,
}


def fail(msg):
    sys.exit("trace schema check FAILED: %s" % msg)


def check_fields(obj, spec, where):
    for key, kind in spec.items():
        if key not in obj:
            fail("%s: missing key %r" % (where, key))
        value = obj[key]
        if kind is bool:
            ok = isinstance(value, bool)
        else:
            ok = isinstance(value, kind) and not isinstance(value, bool)
        if not ok:
            fail("%s: key %r has %r, expected %s" %
                 (where, key, value, kind.__name__))


def check_pipeline(events, allow_partial=False, expect_drr=False):
    """Validates the micro-batch/credit span schema of a pipelined trace."""
    mb_spans = [e for e in events
                if e.get("ph") == "X" and e.get("cat") == "mb"]
    if not mb_spans:
        fail("--pipeline: no 'mb'-category spans (pipelined fabric "
             "instrumentation missing)")

    credit_events = 0
    drr_events = 0
    busy_events = {"cpu.busy": 0, "nic.egress.busy": 0, "nic.ingress.busy": 0}
    nic_byte_events = {"nic.egress_bytes": 0, "nic.ingress_bytes": 0}
    nic_byte_last = {}  # (name, pid) -> last cumulative value
    for e in events:
        if e.get("ph") != "C":
            continue
        name = e.get("name", "")
        if name.startswith("flow.credit.") or name.startswith("flow.queued."):
            credit_events += 1
            if e["args"]["value"] < 0:
                fail("--pipeline: %s went negative (%d) at ts=%d pid=%d" %
                     (name, e["args"]["value"], e.get("ts", -1), e["pid"]))
        elif (name.startswith("egress.queued.") or
              name.startswith("drr.deficit.")):
            # Per-destination DRR egress scheduler tracks (--egress-sched=drr
            # runs only): parked payload bytes and the deficit counter.
            drr_events += 1
            if e["args"]["value"] < 0:
                fail("--pipeline: %s went negative (%d) at ts=%d pid=%d" %
                     (name, e["args"]["value"], e.get("ts", -1), e["pid"]))
        elif name in busy_events:
            busy_events[name] += 1
            if e["args"]["value"] not in (0, 1):
                fail("--pipeline: %s must be a 0/1 busy track, got %d" %
                     (name, e["args"]["value"]))
        elif name in nic_byte_events:
            nic_byte_events[name] += 1
            key = (name, e["pid"])
            value = e["args"]["value"]
            if value < nic_byte_last.get(key, 0):
                fail("--pipeline: cumulative %s went backward on pid=%d "
                     "(%d -> %d)" %
                     (name, e["pid"], nic_byte_last[key], value))
            nic_byte_last[key] = value
    if credit_events == 0:
        fail("--pipeline: no flow.credit.* / flow.queued.* counter events")
    for name, count in busy_events.items():
        if count == 0:
            fail("--pipeline: no %s counter events (resource busy track "
                 "missing)" % name)
    # Counter-track parity with the barrier fabric: both paths emit
    # per-node nic.ingress_bytes / nic.egress_bytes.
    for name, count in nic_byte_events.items():
        if count == 0:
            fail("--pipeline: no %s counter events (parity with the "
                 "barrier-fabric NIC schema)" % name)
    if expect_drr and drr_events == 0:
        fail("--pipeline --expect-drr: no egress.queued.* / drr.deficit.* "
             "counter events (DRR egress scheduler tracks missing)")

    for name in ("pipeline.makespan_us", "pipeline.barrier_us"):
        values = [e["args"]["value"] for e in events
                  if e.get("ph") == "C" and e.get("name") == name]
        if not values:
            # A failed run dies before the end-of-run summary counters.
            if allow_partial:
                continue
            fail("--pipeline: missing %s counter" % name)
        if any(v <= 0 for v in values):
            fail("--pipeline: %s must be positive, got %r" % (name, values))

    # Per-node tracking watermarks: the highest key each (source, table)
    # stream had delivered to this node by a given time, and whether the
    # stream had already signalled end-of-stream.
    tracks = {}  # pid -> list of (ts, src, table, watermark, eos)
    schedules = {}  # pid -> list of (ts, range_lo, range_hi)
    for e in mb_spans:
        name = e["name"]
        pid = e["pid"]
        args = e.get("args", {})
        if name in ("track.track_r", "track.track_s"):
            for key in ("src", "watermark", "eos"):
                if key not in args:
                    fail("--pipeline: %s span without args.%s" % (name, key))
            tracks.setdefault(pid, []).append(
                (e["ts"], args["src"], name[-1], args["watermark"],
                 args["eos"]))
        elif name == "schedule":
            for key in ("range_lo", "range_hi"):
                if key not in args:
                    fail("--pipeline: schedule span without args.%s" % key)
            schedules.setdefault(pid, []).append(
                (e["ts"], args["range_lo"], args["range_hi"]))
    if not schedules and not allow_partial:
        fail("--pipeline: no schedule spans")
    num_nodes = max(e["pid"] for e in mb_spans) + 1

    checked_ranges = 0
    for pid, spans in sorted(schedules.items()):
        spans.sort()
        # Ranges are contiguous, monotone and closed by one -1 sentinel.
        if spans[0][1] != 0:
            fail("--pipeline: node %d first schedule range starts at %d, "
                 "expected 0" % (pid, spans[0][1]))
        for (_, lo, hi), (_, next_lo, _) in zip(spans, spans[1:]):
            if hi == -1:
                fail("--pipeline: node %d has a schedule span after the "
                     "range_hi=-1 sentinel" % pid)
            if hi < lo:
                fail("--pipeline: node %d schedule range [%d, %d) is "
                     "reversed" % (pid, lo, hi))
            if next_lo != hi:
                fail("--pipeline: node %d schedule ranges not contiguous: "
                     "[.., %d) then [%d, ..)" % (pid, hi, next_lo))
        if spans[-1][2] != -1 and not allow_partial:
            fail("--pipeline: node %d never scheduled the final "
                 "range_hi=-1 batch" % pid)
        # Causality: a range is only schedulable once every source stream's
        # watermark passed it (or the stream ended).
        node_tracks = tracks.get(pid, [])
        for ts, lo, hi in spans:
            if hi == -1:
                continue
            for src in range(num_nodes):
                for table in ("r", "s"):
                    covered = any(
                        t_ts <= ts and t_src == src and t_table == table and
                        (t_eos == 1 or t_mark >= hi)
                        for t_ts, t_src, t_table, t_mark, t_eos
                        in node_tracks)
                    if not covered:
                        fail("--pipeline: node %d scheduled [%d, %d) at "
                             "ts=%d before source %d delivered table %s "
                             "up to %d" % (pid, lo, hi, ts, src, table, hi))
            checked_ranges += 1
    print("pipeline schema check passed: %d mb span(s), %d credit "
          "sample(s), %d node(s), %d causal range(s)" %
          (len(mb_spans), credit_events, num_nodes, checked_ranges))


def check_trace(path, pipeline=False, allow_partial=False,
                expect_drr=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except json.JSONDecodeError as e:
        fail("%s is not valid JSON: %s" % (path, e))
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("expected a non-empty traceEvents array")

    phase_spans = 0
    nic_counters = 0
    process_names = 0
    for i, e in enumerate(events):
        where = "event %d" % i
        if not isinstance(e, dict):
            fail("%s: not an object: %r" % (where, e))
        ph = e.get("ph")
        if ph not in ALLOWED_PHASES:
            fail("%s: ph %r not in %s" % (where, ph, sorted(ALLOWED_PHASES)))
        name = e.get("name")
        if not isinstance(name, str) or not name:
            fail("%s: missing/empty name" % where)
        for key in ("pid", "tid"):
            v = e.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail("%s (%s): bad %s %r" % (where, name, key, v))
        if ph == "M":
            if name == "process_name":
                if not isinstance(e.get("args", {}).get("name"), str):
                    fail("%s: process_name without args.name" % where)
                process_names += 1
            continue
        ts = e.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            fail("%s (%s): bad ts %r" % (where, name, ts))
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                fail("%s (%s): X event with bad dur %r" % (where, name, dur))
            if e.get("cat") == "phase":
                phase_spans += 1
        elif ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, int) or isinstance(value, bool):
                fail("%s (%s): C event without integer args.value" %
                     (where, name))
            if name.startswith("nic."):
                nic_counters += 1
    if process_names == 0:
        fail("no process_name metadata (per-node lanes would be unlabeled)")
    if pipeline:
        # The event-driven fabric replaces the barrier fabric's phase spans
        # and NIC counters with micro-batch spans and credit counters.
        check_pipeline(events, allow_partial=allow_partial,
                       expect_drr=expect_drr)
        return
    if phase_spans == 0:
        fail("no 'phase'-category spans (fabric instrumentation missing)")
    if nic_counters == 0:
        fail("no nic.* counter events (NIC byte counters missing)")
    print("trace schema check passed: %d event(s), %d phase span(s), "
          "%d nic counter(s), %d process name(s)" %
          (len(events), phase_spans, nic_counters, process_names))


def check_explain(expect_zero_hot_split=False):
    try:
        explains = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        fail("stdin is not valid JSON: %s" % e)
    if not isinstance(explains, list) or not explains:
        fail("expected a non-empty array of per-algorithm explains")
    for explain in explains:
        algo = explain.get("algorithm")
        if not isinstance(algo, str) or not algo:
            fail("explain without an algorithm name: %r" % explain)
        check_fields(explain, EXPLAIN_KEYS, algo)
        classes = explain["classes"]
        for cls in EXPLAIN_CLASSES:
            if cls not in classes:
                fail("%s: missing decision class %r" % (algo, cls))
            check_fields(classes[cls], {"keys": int, "bytes": int},
                         "%s class %s" % (algo, cls))
        # The audit must reconcile: class totals add up to the scheduled
        # bytes/keys, and the headline invariant holds when advertised.
        class_keys = sum(classes[c]["keys"] for c in EXPLAIN_CLASSES)
        class_bytes = sum(classes[c]["bytes"] for c in EXPLAIN_CLASSES)
        if class_keys != explain["total_keys"]:
            fail("%s: class keys sum %d != total_keys %d" %
                 (algo, class_keys, explain["total_keys"]))
        if class_bytes != explain["scheduled_bytes"]:
            fail("%s: class bytes sum %d != scheduled_bytes %d" %
                 (algo, class_bytes, explain["scheduled_bytes"]))
        if explain["matches_traffic"] and (
                explain["scheduled_bytes"] !=
                explain["traffic_scheduled_bytes"]):
            fail("%s: matches_traffic yet %d != %d" %
                 (algo, explain["scheduled_bytes"],
                  explain["traffic_scheduled_bytes"]))
        if explain["saved_vs_hash_bytes"] != (
                explain["hash_join_bytes"] - explain["scheduled_bytes"]):
            fail("%s: saved_vs_hash_bytes is not hash - scheduled" % algo)
        # Pins the no-skew guarantee: on workloads below the hot-key
        # threshold (or with splitting off) not a single key may be split.
        if expect_zero_hot_split:
            hot = classes["hot_split"]
            if hot["keys"] != 0 or hot["bytes"] != 0:
                fail("%s: expected zero hot_split decisions, got %d key(s) / "
                     "%d byte(s)" % (algo, hot["keys"], hot["bytes"]))
            for rec in explain["top_keys"]:
                if rec["chosen_split"] != 0:
                    fail("%s: top key %d has chosen_split=%d on a run that "
                         "must not split" %
                         (algo, rec["key"], rec["chosen_split"]))
        for rec in explain["top_keys"]:
            check_fields(rec, TOP_KEY_KEYS,
                         "%s top key %r" % (algo, rec.get("key")))
            if rec["class"] not in EXPLAIN_CLASSES:
                fail("%s: top key %d has unknown class %r" %
                     (algo, rec["key"], rec["class"]))
    print("explain schema check passed: %d algorithm(s), %d audited key(s)" %
          (len(explains), sum(e["total_keys"] for e in explains)))


# Wait class -> the resource its waits are charged to (obs/blame.h).
BLAME_RESOURCE_FOR_CLASS = {
    "compute": "cpu",
    "cpu_queue": "cpu",
    "credit_hol": "link",
    "credit_exhausted": "link",
    "egress_hol": "nic.egress",
    "egress_queue": "nic.egress",
    "drr_wait": "nic.egress",
    "ingress_queue": "nic.ingress",
    "wire": "wire",
}
BLAME_KEYS = {
    "algorithm": str,
    "num_nodes": int,
    "makespan_us": int,
    "bucket_sum_us": int,
    "reconciled": bool,
    "path_segments": int,
    "classes": dict,
    "hol_us": int,
    "hol_share": float,
    "buckets": list,
    "top_edges": list,
}
BLAME_BUCKET_KEYS = {
    "node": int, "resource": str, "stage": str, "class": str, "us": int,
}
BLAME_EDGE_KEYS = {
    "start_us": int, "end_us": int, "node": int, "resource": str,
    "stage": str, "class": str, "label": str,
}


def check_blame():
    try:
        reports = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        fail("stdin is not valid JSON: %s" % e)
    if not isinstance(reports, list) or not reports:
        fail("expected a non-empty array of per-algorithm blame reports")
    total_segments = 0
    for report in reports:
        algo = report.get("algorithm")
        if not isinstance(algo, str) or not algo:
            fail("blame report without an algorithm name: %r" % report)
        where = "blame %s" % algo
        check_fields(report, BLAME_KEYS, where)
        classes = report["classes"]
        if set(classes) != set(BLAME_RESOURCE_FOR_CLASS):
            fail("%s: wait classes %s != expected %s" %
                 (where, sorted(classes), sorted(BLAME_RESOURCE_FOR_CLASS)))
        for cls, us in classes.items():
            if not isinstance(us, int) or isinstance(us, bool) or us < 0:
                fail("%s: class %s has bad micros %r" % (where, cls, us))
        # The reconciliation invariant — the whole point of the report:
        # every attributed microsecond sums back to the makespan exactly.
        class_sum = sum(classes.values())
        if class_sum != report["bucket_sum_us"]:
            fail("%s: class sum %d != bucket_sum_us %d" %
                 (where, class_sum, report["bucket_sum_us"]))
        if report["bucket_sum_us"] != report["makespan_us"]:
            fail("%s: bucket_sum_us %d != makespan_us %d" %
                 (where, report["bucket_sum_us"], report["makespan_us"]))
        if report["reconciled"] is not True:
            fail("%s: reconciled is not true" % where)
        if report["hol_us"] != (classes["credit_hol"] +
                                classes["egress_hol"]):
            fail("%s: hol_us %d != credit_hol + egress_hol" %
                 (where, report["hol_us"]))
        bucket_sum = 0
        for i, bucket in enumerate(report["buckets"]):
            bwhere = "%s bucket %d" % (where, i)
            check_fields(bucket, BLAME_BUCKET_KEYS, bwhere)
            if bucket["us"] <= 0:
                fail("%s: non-positive micros %d" % (bwhere, bucket["us"]))
            if bucket["class"] not in BLAME_RESOURCE_FOR_CLASS:
                fail("%s: unknown wait class %r" % (bwhere, bucket["class"]))
            if bucket["resource"] != BLAME_RESOURCE_FOR_CLASS[bucket["class"]]:
                fail("%s: class %s charged to resource %r, expected %r" %
                     (bwhere, bucket["class"], bucket["resource"],
                      BLAME_RESOURCE_FOR_CLASS[bucket["class"]]))
            if not 0 <= bucket["node"] < report["num_nodes"]:
                fail("%s: node %d out of range" % (bwhere, bucket["node"]))
            bucket_sum += bucket["us"]
        if bucket_sum != report["bucket_sum_us"]:
            fail("%s: listed buckets sum to %d, header says %d" %
                 (where, bucket_sum, report["bucket_sum_us"]))
        for i, edge in enumerate(report["top_edges"]):
            ewhere = "%s edge %d" % (where, i)
            check_fields(edge, BLAME_EDGE_KEYS, ewhere)
            if not 0 <= edge["start_us"] < edge["end_us"]:
                fail("%s: bad interval [%d, %d)" %
                     (ewhere, edge["start_us"], edge["end_us"]))
            if edge["end_us"] > report["makespan_us"]:
                fail("%s: edge ends at %d, past makespan %d" %
                     (ewhere, edge["end_us"], report["makespan_us"]))
            if edge["class"] not in BLAME_RESOURCE_FOR_CLASS:
                fail("%s: unknown wait class %r" % (ewhere, edge["class"]))
            if edge["resource"] != BLAME_RESOURCE_FOR_CLASS[edge["class"]]:
                fail("%s: class %s charged to resource %r, expected %r" %
                     (ewhere, edge["class"], edge["resource"],
                      BLAME_RESOURCE_FOR_CLASS[edge["class"]]))
            if not 0 <= edge["node"] < report["num_nodes"]:
                fail("%s: node %d out of range" % (ewhere, edge["node"]))
        total_segments += report["path_segments"]
    print("blame schema check passed: %d report(s), %d critical-path "
          "segment(s), all reconciled to the microsecond" %
          (len(reports), total_segments))


def main():
    args = sys.argv[1:]
    expect_zero_hot_split = "--expect-zero-hot-split" in args
    pipeline = "--pipeline" in args
    allow_partial = "--allow-partial" in args
    expect_drr = "--expect-drr" in args
    args = [a for a in args
            if a not in ("--expect-zero-hot-split", "--pipeline",
                         "--allow-partial", "--expect-drr")]
    if len(args) == 2 and args[0] == "trace":
        check_trace(args[1], pipeline=pipeline, allow_partial=allow_partial,
                    expect_drr=expect_drr)
    elif len(args) == 1 and args[0] == "explain":
        check_explain(expect_zero_hot_split)
    elif len(args) == 1 and args[0] == "blame":
        check_blame()
    else:
        sys.exit("usage: check_trace_schema.py trace FILE [--pipeline] "
                 "[--allow-partial] [--expect-drr]\n"
                 "       check_trace_schema.py explain "
                 "[--expect-zero-hot-split] < explain.json\n"
                 "       check_trace_schema.py blame < blame.json")


if __name__ == "__main__":
    main()
