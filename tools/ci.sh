#!/usr/bin/env bash
# CI gate: build and run the test suite under ASan and UBSan, smoke the
# profiling CLI against its JSON schema, and run the thread-pool tests
# under TSan.
#
#   tools/ci.sh            # default gates: address + undefined
#   tools/ci.sh address    # just one sanitizer
#
# Each sanitizer gets its own binary dir (build-asan/, build-ubsan/,
# build-tsan/) so the plain build/ tree is never polluted with
# instrumented objects.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("${@:-address}" )
if [[ $# -eq 0 ]]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  dir="build-${san}"
  case "${san}" in
    address) dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread) dir=build-tsan ;;
    *) echo "unknown sanitizer '${san}' (address|undefined|thread)" >&2; exit 1 ;;
  esac
  echo "=== ${san}: configure + build (${dir}) ==="
  # Honor ccache exactly like the workflow does: sanitizer rebuilds are the
  # most expensive part of the gate and cache perfectly per-sanitizer.
  launcher_flags=()
  if command -v ccache >/dev/null; then
    launcher_flags=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                    -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  fi
  cmake -B "${dir}" -S . -DTJ_SANITIZE="${san}" "${launcher_flags[@]}" >/dev/null
  cmake --build "${dir}" -j "$(nproc)"
  # The hot-path containers and the tracker merge must stay in the
  # sanitized unit leg: their probe/tombstone and cursor arithmetic is
  # exactly what ASan/UBSan exist to check. Guard against a CMake
  # registration regression silently shrinking that coverage.
  # (Captured once per label: `ctest -N | grep -q` would trip pipefail when
  # grep exits at the first match and ctest takes a SIGPIPE.)
  unit_listing="$(ctest --test-dir "${dir}" -N -L unit)"
  for required in kway_merge_test flat_table_test buffer_pool_test \
                  tracker_test hot_split_test zipf_workload_test \
                  pipelined_fabric_test pipelined_track_join_test \
                  blame_test egress_sched_test; do
    if ! grep -q " ${required}\$" <<<"${unit_listing}"; then
      echo "ci.sh: ${required} missing from the unit label in ${dir}" >&2
      exit 1
    fi
  done
  # The chaos seed grid and the recovery loop are the crash-safety proof;
  # they must stay in the sanitized fault leg the same way.
  fault_listing="$(ctest --test-dir "${dir}" -N -L fault)"
  for required in chaos_test recovery_test reliable_fabric_test; do
    if ! grep -q " ${required}\$" <<<"${fault_listing}"; then
      echo "ci.sh: ${required} missing from the fault label in ${dir}" >&2
      exit 1
    fi
  done
  # Labels run cheapest-first so a broken kernel fails in the unit leg
  # before the integration/fault joins spend their (longer) timeouts.
  for label in unit integration fault; do
    echo "=== ${san}: ctest -L ${label} ==="
    ctest --test-dir "${dir}" -L "${label}" --output-on-failure
  done
done

# Profiling smoke: the structured output of `tjsim --profile=json` is an
# interface (EXPERIMENTS.md maps it onto the paper's tables), so CI pins
# its schema. The asan tree always exists at this point when the default
# sanitizer set ran; otherwise reuse whatever tree the caller built.
first="${sanitizers[0]}"
case "${first}" in
  address) smoke_dir=build-asan ;;
  undefined) smoke_dir=build-ubsan ;;
  thread) smoke_dir=build-tsan ;;
esac
echo "=== profile smoke: tjsim --profile=json | check_profile_schema ==="
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=500 --smult=2 \
    --algo=hj,bj-r,2tj-r,3tj,4tj --profile=json \
  | python3 tools/check_profile_schema.py --expect-zero-recovery
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=400 --fault-drop=0.02 \
    --fault-corrupt=0.02 --fault-retries=64 --algo=hj,4tj --profile=json \
  | python3 tools/check_profile_schema.py

# Recovery smoke: a replicated cluster must ride out a fail-stop crash and
# still verify every algorithm's digest; the CLI's exit-code contract
# (usage -> 1, fault-induced failure -> 3) is part of the interface.
echo "=== recovery smoke: tjsim --replicas=2 + crash, exit codes ==="
"${smoke_dir}/tools/tjsim" --nodes=6 --keys=2000 --replicas=2 \
    --fault-crash-node=2 --fault-crash-phase=1 --algo=all >/dev/null
"${smoke_dir}/tools/tjsim" --nodes=6 --keys=500 --replicas=2 \
    --fault-crash-node=1 --fault-crash-phase=1 --algo=3tj,hj \
    --profile=json | python3 tools/check_profile_schema.py
rc=0; "${smoke_dir}/tools/tjsim" --bogus-flag 2>/dev/null || rc=$?
if [[ "${rc}" -ne 1 ]]; then
  echo "ci.sh: usage error exited ${rc}, expected 1" >&2; exit 1
fi
rc=0; "${smoke_dir}/tools/tjsim" --nodes=4 --keys=300 --fault-crash-node=1 \
    --algo=3tj >/dev/null 2>&1 || rc=$?
if [[ "${rc}" -ne 3 ]]; then
  echo "ci.sh: fault-induced failure exited ${rc}, expected 3" >&2; exit 1
fi

# Observability smoke: the Chrome trace export and the EXPLAIN audit are
# interfaces too (README documents the Perfetto workflow, EXPERIMENTS.md
# maps decision classes onto the paper's cost terms), so pin their schemas
# the same way. The explain check also re-verifies the exact-reconciliation
# invariant (class byte sums == audited scheduled bytes).
echo "=== obs smoke: tjsim --trace / --explain=json | check_trace_schema ==="
trace_tmp="$(mktemp -t tjsim_trace.XXXXXX.json)"
trap 'rm -f "${trace_tmp}"' EXIT
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=300 --algo=hj,4tj \
    --trace="${trace_tmp}" >/dev/null
python3 tools/check_trace_schema.py trace "${trace_tmp}"
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=500 --smult=2 \
    --algo=2tj-r,3tj,4tj --explain=json \
  | python3 tools/check_trace_schema.py explain

# Hot-key splitting smoke: on a skewed run with the threshold armed, the
# split decisions must still reconcile byte-for-byte; on a uniform run the
# same threshold must produce zero hot_split decisions and zero fragment
# traffic (EXPLAIN and the step profile both pin it).
echo "=== hot-split smoke: skewed reconciliation + uniform zero-split pins ==="
"${smoke_dir}/tools/tjsim" --nodes=8 --keys=5000 --zipf=1.2 \
    --hot-key-threshold=10000 --algo=4tj --explain=json \
  | python3 tools/check_trace_schema.py explain
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=2000 \
    --hot-key-threshold=10000 --algo=4tj --explain=json \
  | python3 tools/check_trace_schema.py explain --expect-zero-hot-split
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=2000 \
    --hot-key-threshold=10000 --algo=hj,4tj --profile=json \
  | python3 tools/check_profile_schema.py --expect-zero-recovery \
      --expect-zero-hot-split

# Pipelined-fabric smoke: the event-driven micro-batch trace is an
# interface too (the CI makespan gate and EXPERIMENTS.md both read it), so
# pin its span/credit schema and the causal track-before-schedule
# invariant the same way.
echo "=== pipeline smoke: tjsim --pipeline --trace | check_trace_schema --pipeline ==="
pipeline_trace_tmp="$(mktemp -t tjsim_pipeline_trace.XXXXXX.json)"
trap 'rm -f "${trace_tmp}" "${pipeline_trace_tmp}"' EXIT
# One algorithm per trace: each pipelined run restarts its modeled clock,
# so a shared file would interleave two timelines.
for algo in 3tj 4tj; do
  "${smoke_dir}/tools/tjsim" --nodes=4 --keys=20000 --rmult=2 --smult=3 \
      --algo="${algo}" --pipeline --trace="${pipeline_trace_tmp}" >/dev/null
  python3 tools/check_trace_schema.py trace "${pipeline_trace_tmp}" --pipeline
done
# Faulted pipelined traces obey the same schema: a recovered drop/retry run
# satisfies every invariant, and a crash-faulted run (which exits 3 but
# still writes its partial trace) passes with --allow-partial.
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=20000 --rmult=2 --smult=3 \
    --algo=4tj --pipeline --fault-drop=0.02 --fault-retries=64 \
    --trace="${pipeline_trace_tmp}" >/dev/null
python3 tools/check_trace_schema.py trace "${pipeline_trace_tmp}" --pipeline
rc=0; "${smoke_dir}/tools/tjsim" --nodes=4 --keys=20000 --rmult=2 --smult=3 \
    --algo=4tj --pipeline --fault-crash-node=2 --fault-crash-phase=1 \
    --trace="${pipeline_trace_tmp}" >/dev/null 2>&1 || rc=$?
if [[ "${rc}" -ne 3 ]]; then
  echo "ci.sh: crashed pipelined run exited ${rc}, expected 3" >&2; exit 1
fi
python3 tools/check_trace_schema.py trace "${pipeline_trace_tmp}" \
    --pipeline --allow-partial

# Makespan-blame smoke: the critical-path report must reconcile to the
# microsecond (bucket sums == makespan_us), with valid wait classes and
# resource attributions — and the pipelined driver must refuse the
# recovery flags up front (exit 1) rather than silently ignoring them.
echo "=== blame smoke: tjsim --pipeline --blame=json | check_trace_schema blame ==="
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=20000 --rmult=2 --smult=3 \
    --algo=3tj,4tj --pipeline --blame=json \
  | python3 tools/check_trace_schema.py blame
"${smoke_dir}/tools/tjsim" --nodes=8 --keys=20000 --rmult=2 --smult=3 \
    --zipf=1.2 --hot-key-threshold=10000 --algo=4tj --pipeline \
    --fault-drop=0.02 --fault-retries=64 --blame=json \
  | python3 tools/check_trace_schema.py blame
rc=0; "${smoke_dir}/tools/tjsim" --nodes=4 --keys=500 --pipeline \
    --replicas=2 --algo=4tj >/dev/null 2>&1 || rc=$?
if [[ "${rc}" -ne 1 ]]; then
  echo "ci.sh: --pipeline with --replicas exited ${rc}, expected 1" >&2
  exit 1
fi
rc=0; "${smoke_dir}/tools/tjsim" --nodes=4 --keys=500 --blame=json \
    --algo=4tj >/dev/null 2>&1 || rc=$?
if [[ "${rc}" -ne 1 ]]; then
  echo "ci.sh: --blame without --pipeline exited ${rc}, expected 1" >&2
  exit 1
fi

# DRR egress-scheduler smoke: a drr run's trace must carry the deficit
# counter tracks and queued-wait spans (--expect-drr), its blame report
# must reconcile with the drr_wait class admitted, and the flag surface
# must reject bad values / missing prerequisites with exit 1.
echo "=== drr smoke: tjsim --egress-sched=drr --trace/--blame | check_trace_schema ==="
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=20000 --rmult=2 --smult=3 \
    --algo=4tj --pipeline --pipeline-chunk=1024 --egress-sched=drr \
    --trace="${pipeline_trace_tmp}" >/dev/null
python3 tools/check_trace_schema.py trace "${pipeline_trace_tmp}" \
    --pipeline --expect-drr
"${smoke_dir}/tools/tjsim" --nodes=4 --keys=20000 --rmult=2 --smult=3 \
    --algo=3tj,4tj --pipeline --egress-sched=drr --drr-quantum=2048 \
    --blame=json \
  | python3 tools/check_trace_schema.py blame
for bad in "--pipeline --egress-sched=wfq" "--egress-sched=drr" \
           "--pipeline --drr-quantum=4096"; do
  # shellcheck disable=SC2086
  rc=0; "${smoke_dir}/tools/tjsim" --nodes=4 --keys=500 --algo=4tj \
      ${bad} >/dev/null 2>&1 || rc=$?
  if [[ "${rc}" -ne 1 ]]; then
    echo "ci.sh: tjsim ${bad} exited ${rc}, expected 1" >&2; exit 1
  fi
done

# The batch-scoped ParallelFor is lock-order sensitive; run its tests (and
# the rest of tj_common's concurrency surface) under TSan even when the
# caller only asked for the default sanitizers. The pipelined fabric's
# event loop and credit accounting ride along: the fabric is specified as
# single-threaded, and TSan proves the implementation never quietly grows
# a second thread.
if [[ ! " ${sanitizers[*]} " == *" thread "* ]]; then
  echo "=== thread: thread_pool + pipelined fabric tests under TSan (build-tsan) ==="
  cmake -B build-tsan -S . -DTJ_SANITIZE=thread "${launcher_flags[@]}" >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target thread_pool_test \
      pipelined_fabric_test pipelined_track_join_test egress_sched_test
  ctest --test-dir build-tsan \
      -R 'thread_pool_test|pipelined_fabric_test|pipelined_track_join_test|egress_sched_test' \
      --output-on-failure
fi

echo "ci.sh: all sanitizer runs passed"
