#!/usr/bin/env bash
# CI gate: build and run the test suite under ASan and UBSan.
#
#   tools/ci.sh            # both sanitizers
#   tools/ci.sh address    # just one
#
# Each sanitizer gets its own binary dir (build-asan/, build-ubsan/) so the
# plain build/ tree is never polluted with instrumented objects.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("${@:-address}" )
if [[ $# -eq 0 ]]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  dir="build-${san}"
  case "${san}" in
    address) dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread) dir=build-tsan ;;
    *) echo "unknown sanitizer '${san}' (address|undefined|thread)" >&2; exit 1 ;;
  esac
  echo "=== ${san}: configure + build (${dir}) ==="
  cmake -B "${dir}" -S . -DTJ_SANITIZE="${san}" >/dev/null
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== ${san}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure
done

echo "ci.sh: all sanitizer runs passed"
