#!/usr/bin/env python3
"""Validates `tjsim --profile=json` output read from stdin.

The profile JSON is a stable interface (EXPERIMENTS.md documents how its
columns map onto the paper's tables), so CI pipes a smoke run through this
check: the output must be a non-empty array of per-algorithm objects, each
carrying totals and one record per (algorithm, phase) with wall seconds,
modeled network seconds, and the goodput/local/retransmit byte split.
"""
import json
import sys

TOTALS_KEYS = {
    "wall_seconds": float,
    "net_seconds": float,
    "goodput_bytes": int,
    "local_bytes": int,
    "retransmit_bytes": int,
    "run_max_node_bytes": int,
    # Run-level: wire bytes burned by failed recovery attempts. Failed
    # attempts leave no step records, so it is NOT part of the per-step
    # sum check below.
    "recovery_bytes": int,
}
# The track-join phase labels are themselves an interface: EXPERIMENTS.md,
# the bench suite, and the tracker-merge baseline reference phases like
# "merge received keys" by name, so an accidental rename must fail CI here
# rather than silently detach those references.
TRACK_JOIN_PHASES = {
    "sort local R tuples",
    "sort local S tuples",
    "aggregate keys",
    "hash partition & transfer keys",
    "merge received keys",
    "generate schedules & send locations",
    "selective broadcast & migrate",
    "merge received tuples",
    "final merge-join R->S",
    "final merge-join S->R",
}
TRACK_JOIN_ALGOS = {"2tj-r", "2tj-s", "3tj", "4tj"}

STEP_KEYS = {
    "phase": str,
    "wall_seconds": float,
    "net_seconds": float,
    "goodput_bytes": int,
    "local_bytes": int,
    "retransmit_bytes": int,
    "max_node_bytes": int,
    "retransmitted_frames": int,
    "nack_messages": int,
    "frames_dropped": int,
    "frames_corrupted": int,
    "frames_duplicated": int,
    "bytes_by_type": dict,
}


def fail(msg):
    sys.exit("profile schema check FAILED: %s" % msg)


def check_fields(obj, spec, where):
    for key, kind in spec.items():
        if key not in obj:
            fail("%s: missing key %r" % (where, key))
        value = obj[key]
        if kind is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        else:
            ok = isinstance(value, kind) and not isinstance(value, bool)
        if not ok:
            fail("%s: key %r has %r, expected %s" %
                 (where, key, value, kind.__name__))


def main():
    # --expect-zero-recovery pins the pristine-path guarantee: a run with
    # no failed attempts must report exactly zero recovery bytes.
    expect_zero_recovery = "--expect-zero-recovery" in sys.argv[1:]
    # --expect-zero-hot-split pins the no-skew guarantee: below the hot-key
    # threshold (or with splitting off) no fragment instructions may move,
    # so neither fragment type may appear in any step's byte breakdown
    # (bytes_by_type omits all-zero types).
    expect_zero_hot_split = "--expect-zero-hot-split" in sys.argv[1:]
    try:
        profiles = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        fail("not valid JSON: %s" % e)
    if not isinstance(profiles, list) or not profiles:
        fail("expected a non-empty array of per-algorithm profiles")
    for profile in profiles:
        algo = profile.get("algorithm")
        if not isinstance(algo, str) or not algo:
            fail("profile without an algorithm name: %r" % profile)
        if not isinstance(profile.get("nodes"), int) or profile["nodes"] < 1:
            fail("%s: bad node count" % algo)
        check_fields(profile.get("totals", {}), TOTALS_KEYS, algo + ".totals")
        steps = profile.get("steps")
        if not isinstance(steps, list) or not steps:
            fail("%s: expected a non-empty steps array" % algo)
        for step in steps:
            check_fields(step, STEP_KEYS, "%s step %r" %
                         (algo, step.get("phase")))
            if expect_zero_hot_split:
                present = set(step["bytes_by_type"]) & {"fragment_r",
                                                        "fragment_s"}
                if present:
                    fail("%s step %r: fragment traffic %s on a run that "
                         "must not split hot keys" %
                         (algo, step["phase"], sorted(present)))
        if algo in TRACK_JOIN_ALGOS:
            labels = {s["phase"] for s in steps}
            unknown = labels - TRACK_JOIN_PHASES
            if unknown:
                fail("%s: unrecognized phase label(s) %s" %
                     (algo, sorted(unknown)))
            if "merge received keys" not in labels:
                fail("%s: canonical phase 'merge received keys' missing" %
                     algo)
        # The per-step records must add up to the advertised totals.
        for key in ("goodput_bytes", "local_bytes", "retransmit_bytes"):
            total = sum(s[key] for s in steps)
            if total != profile["totals"][key]:
                fail("%s: step %s sum %d != total %d" %
                     (algo, key, total, profile["totals"][key]))
        if expect_zero_recovery and profile["totals"]["recovery_bytes"] != 0:
            fail("%s: pristine run reports recovery_bytes=%d, expected 0" %
                 (algo, profile["totals"]["recovery_bytes"]))
    print("profile schema check passed: %d algorithm(s), %d step(s)" %
          (len(profiles), sum(len(p["steps"]) for p in profiles)))


if __name__ == "__main__":
    main()
