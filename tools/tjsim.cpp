// tjsim — interactive distributed-join traffic simulator.
//
// Describe a join input on the command line, run any (or all) of the
// algorithms on the simulated cluster, and get verified results with
// per-class traffic and modeled time. Examples:
//
//   tjsim --nodes=16 --keys=1000000 --rpayload=16 --spayload=56
//   tjsim --smult=5 --spattern=2,2,1 --collocation=intra --algo=4tj
//   tjsim --zipf=1.1 --balance --algo=4tj,hj
//   tjsim --keys=50000 --runmatched=450000 --algo=all --bandwidth=1.25
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "core/late_hash_join.h"
#include "core/pipelined_track_join.h"
#include "core/recovery.h"
#include "core/rid_hash_join.h"
#include "core/schedule.h"
#include "core/track_join.h"
#include "net/time_model.h"
#include "obs/blame.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/step_profile.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace {

struct Options {
  uint32_t nodes = 8;
  uint64_t keys = 100000;
  uint32_t r_mult = 1;
  uint32_t s_mult = 1;
  std::vector<uint32_t> r_pattern;
  std::vector<uint32_t> s_pattern;
  tj::Collocation collocation = tj::Collocation::kRandom;
  double collocated_fraction = 1.0;
  uint64_t r_unmatched = 0;
  uint64_t s_unmatched = 0;
  uint32_t r_payload = 16;
  uint32_t s_payload = 16;
  uint32_t key_bytes = 4;
  double zipf = -1.0;  // >= 0 switches to the Zipf generator.
  bool shuffle = false;
  bool balance = false;
  uint64_t hot_key_threshold = 0;  // 0 = hot-key splitting off.
  uint32_t hot_key_max_split = 4;
  bool delta = false;
  bool group = false;
  bool pipeline = false;
  uint64_t pipeline_chunk = 0;  // 0 = PipelineConfig default.
  uint64_t inbox_budget = 0;    // 0 = PipelineConfig default.
  std::string egress_sched;     // "" (default fifo) | fifo | drr
  uint64_t drr_quantum = 0;     // 0 = PipelineConfig default (chunk_bytes).
  uint64_t seed = 42;
  double bandwidth_gbps = 0.093;
  std::vector<std::string> algos = {"all"};
  tj::FaultPolicy fault;
  uint64_t fault_seed = 0;
  bool fault_seed_set = false;
  uint32_t replicas = 1;
  double phase_deadline = 0;
  uint32_t recovery_attempts = 0;  // 0 = default (4) when recovery is on.
  double recovery_backoff = 0.05;
  std::string profile;  // "" (off) | json | csv | table
  std::string trace_path;  // "" (off) | Chrome trace output file
  std::string explain;     // "" (off) | json | table
  uint64_t explain_top = 10;
  std::string blame;       // "" (off) | json | table; requires --pipeline
  uint64_t blame_top = 20;
  bool metrics = false;
};

[[noreturn]] void Usage() {
  std::printf(R"(tjsim — distributed join traffic simulator (track join & baselines)

workload:
  --nodes=N            cluster size (default 8)
  --keys=N             distinct matched keys (default 100000)
  --rmult=N --smult=N  copies of each key per table (default 1)
  --rpattern=a,b,...   placement pattern for R repeats (sums to rmult)
  --spattern=a,b,...   placement pattern for S repeats
  --collocation=MODE   random | intra | inter (default random)
  --collocated=F       fraction of keys following the mode (default 1.0)
  --runmatched=N       R rows with unmatched keys (drives selectivity)
  --sunmatched=N       S rows with unmatched keys
  --rpayload=B --spayload=B  payload bytes per tuple (default 16)
  --zipf=THETA         use Zipf-skewed keys instead (keys = domain)
  --shuffle            shuffle all tuples after generation
  --seed=N             PRNG seed (default 42)

execution:
  --algo=LIST          comma list of: hj bj-r bj-s 2tj-r 2tj-s 3tj 4tj
                       rid-hj late-hj all (default all)
  --key-bytes=B        serialized key width wk (default 4)
  --balance            balance-aware 4-phase scheduling
  --hot-key-threshold=N  split keys whose modeled output (r_rows*s_rows)
                       reaches N across several nodes (4tj; 0 = off)
  --hot-key-max-split=W  cap on workers per split hot key (default 4)
  --delta              delta-compress tracking keys
  --group              node-group location messages
  --bandwidth=GBPS     NIC GB/s for the time model (default 0.093)
  --pipeline           event-driven micro-batch execution for 3tj/4tj:
                       tracking, scheduling and transfers overlap; reports
                       modeled makespan vs the barrier sum-of-phases.
                       Incompatible with --delta/--group (plain wire format
                       required) and with the recovery flags.
  --pipeline-chunk=B   micro-batch chunk payload bytes (default 4096)
  --inbox-budget=B     per-node inbox budget enforced by credit-based flow
                       control (default 32768)
  --egress-sched=POL   egress NIC scheduling policy for --pipeline:
                       fifo | drr (default fifo). drr drains per-destination
                       queues by deficit round-robin, so one backlogged
                       destination cannot head-of-line block the others.
                       Timing-only: traffic, checksums and EXPLAIN are
                       byte-identical across policies.
  --drr-quantum=B      DRR byte quantum per destination per round (default:
                       the chunk size); requires --egress-sched=drr

fault injection (any nonzero flag frames messages and enables retry/ack):
  --fault-drop=P       P(frame dropped) per transmission (default 0)
  --fault-corrupt=P    P(one bit flipped) per transmission (default 0)
  --fault-dup=P        P(frame duplicated) per transmission (default 0)
  --fault-reorder=P    P(adjacent inbox messages swapped) (default 0)
  --fault-crash-node=N node that fail-stops (query fails with DataLoss
                       unless recovery is on)
  --fault-crash-phase=K  0-based global phase the crash takes effect
  --fault-slow-node=N  straggler node: phases run slower in modeled time
                       (pristine wire path; traffic is unchanged)
  --fault-slow-seconds=S  modeled extra seconds per phase for the straggler
  --fault-retries=N    retransmit rounds before giving up (default 8)
  --fault-seed=N       injector PRNG seed (default: --seed)

recovery (replica failover + checkpointed replay; enabled by any of these):
  --replicas=K         copies per partition, chained declustering (default 1)
  --phase-deadline=S   modeled phase deadline: a straggler slower than S is
                       promoted to suspected-dead and failed over
  --recovery-attempts=N  total attempt budget incl. the first run
                       (default 4 once recovery is on)
  --recovery-backoff=S initial modeled backoff before a transient retry,
                       doubling per consecutive retry (default 0.05)

observability:
  --profile=FORMAT     per-step breakdown after each run: json | csv | table
                       (json/csv replace the default report on stdout)
  --trace=FILE         record spans and write Chrome trace-event JSON to FILE
                       (open in Perfetto / chrome://tracing)
  --explain=FORMAT     per-key scheduler audit for track joins: json | table
                       (json replaces the default report on stdout)
  --explain-top=N      heavy-hitter keys listed per audit (default 10)
  --blame=FORMAT       critical-path makespan blame for pipelined runs:
                       json | table. Decomposes pipeline.makespan_us into
                       (node, resource, stage, wait-class) buckets that sum
                       to the makespan exactly; requires --pipeline (json
                       replaces the default report on stdout)
  --blame-top=N        critical-path edges listed per report (default 20)
  --metrics            dump the metrics registry (Prometheus text format)

exit codes: 0 success; 1 usage error or result mismatch; 2 join failure;
3 fault-induced failure (DataLoss / Unavailable / DeadlineExceeded).
)");
  std::exit(0);
}

// --- Strict numeric flag parsing -------------------------------------------
//
// Every numeric flag must consume its whole value and fall inside the
// flag's documented range; anything else (empty value, trailing junk,
// negative numbers fed to unsigned flags, overflow) is a hard error.
// strtoul-with-null-endptr silently turned "--nodes=foo" into a 0-node
// cluster before.

[[noreturn]] void FlagError(const char* flag, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "invalid value '%s' for %s (expected %s)\n", value,
               flag, expected);
  std::exit(1);
}

uint64_t ParseUint64Flag(const char* flag, const char* value, uint64_t min,
                         uint64_t max, const char* expected) {
  if (*value == '\0' || *value == '-' || *value == '+') {
    FlagError(flag, value, expected);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < min ||
      parsed > max) {
    FlagError(flag, value, expected);
  }
  return parsed;
}

uint32_t ParseUint32Flag(const char* flag, const char* value, uint32_t min,
                         uint32_t max, const char* expected) {
  return static_cast<uint32_t>(ParseUint64Flag(flag, value, min, max,
                                               expected));
}

double ParseDoubleFlag(const char* flag, const char* value, double min,
                       double max, const char* expected) {
  if (*value == '\0') FlagError(flag, value, expected);
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE ||
      std::isnan(parsed) || parsed < min || parsed > max) {
    FlagError(flag, value, expected);
  }
  return parsed;
}

std::vector<uint32_t> ParsePattern(const char* flag, const char* s) {
  std::vector<uint32_t> out;
  const char* p = s;
  while (true) {
    const char* item_end = p;
    while (*item_end && *item_end != ',') ++item_end;
    std::string item(p, item_end);
    out.push_back(ParseUint32Flag(flag, item.c_str(), 1, 1u << 20,
                                  "comma list of positive integers"));
    if (*item_end == '\0') break;
    p = item_end + 1;
  }
  return out;
}

std::vector<std::string> SplitList(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (; *s; ++s) {
    if (*s == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *s;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(a, prefix, len) == 0 ? a + len : nullptr;
    };
    const char* v;
    if ((v = val("--nodes="))) {
      opt.nodes = ParseUint32Flag("--nodes", v, 1, 1u << 16,
                                  "integer in [1, 65536]");
    } else if ((v = val("--keys="))) {
      opt.keys = ParseUint64Flag("--keys", v, 0, UINT64_MAX,
                                 "non-negative integer");
    } else if ((v = val("--rmult="))) {
      opt.r_mult = ParseUint32Flag("--rmult", v, 1, 1u << 20,
                                   "integer in [1, 1048576]");
    } else if ((v = val("--smult="))) {
      opt.s_mult = ParseUint32Flag("--smult", v, 1, 1u << 20,
                                   "integer in [1, 1048576]");
    } else if ((v = val("--rpattern="))) {
      opt.r_pattern = ParsePattern("--rpattern", v);
    } else if ((v = val("--spattern="))) {
      opt.s_pattern = ParsePattern("--spattern", v);
    } else if ((v = val("--collocation="))) {
      if (std::strcmp(v, "intra") == 0) {
        opt.collocation = tj::Collocation::kIntra;
      } else if (std::strcmp(v, "inter") == 0) {
        opt.collocation = tj::Collocation::kInter;
      } else if (std::strcmp(v, "random") == 0) {
        opt.collocation = tj::Collocation::kRandom;
      } else {
        std::fprintf(stderr, "unknown collocation '%s'\n", v);
        std::exit(1);
      }
    } else if ((v = val("--collocated="))) {
      opt.collocated_fraction =
          ParseDoubleFlag("--collocated", v, 0.0, 1.0, "fraction in [0, 1]");
    } else if ((v = val("--runmatched="))) {
      opt.r_unmatched = ParseUint64Flag("--runmatched", v, 0, UINT64_MAX,
                                        "non-negative integer");
    } else if ((v = val("--sunmatched="))) {
      opt.s_unmatched = ParseUint64Flag("--sunmatched", v, 0, UINT64_MAX,
                                        "non-negative integer");
    } else if ((v = val("--rpayload="))) {
      opt.r_payload = ParseUint32Flag("--rpayload", v, 0, 1u << 20,
                                      "bytes in [0, 1048576]");
    } else if ((v = val("--spayload="))) {
      opt.s_payload = ParseUint32Flag("--spayload", v, 0, 1u << 20,
                                      "bytes in [0, 1048576]");
    } else if ((v = val("--key-bytes="))) {
      opt.key_bytes = ParseUint32Flag("--key-bytes", v, 1, 8,
                                      "bytes in [1, 8]");
    } else if ((v = val("--zipf="))) {
      opt.zipf = ParseDoubleFlag("--zipf", v, 0.0, 100.0,
                                 "theta in [0, 100]");
    } else if ((v = val("--seed="))) {
      opt.seed = ParseUint64Flag("--seed", v, 0, UINT64_MAX,
                                 "non-negative integer");
    } else if ((v = val("--bandwidth="))) {
      opt.bandwidth_gbps = ParseDoubleFlag("--bandwidth", v, 1e-6, 1e6,
                                           "GB/s in [1e-6, 1e6]");
    } else if ((v = val("--fault-drop="))) {
      opt.fault.drop = ParseDoubleFlag("--fault-drop", v, 0.0, 1.0,
                                       "probability in [0, 1]");
    } else if ((v = val("--fault-corrupt="))) {
      opt.fault.corrupt = ParseDoubleFlag("--fault-corrupt", v, 0.0, 1.0,
                                          "probability in [0, 1]");
    } else if ((v = val("--fault-dup="))) {
      opt.fault.duplicate = ParseDoubleFlag("--fault-dup", v, 0.0, 1.0,
                                            "probability in [0, 1]");
    } else if ((v = val("--fault-reorder="))) {
      opt.fault.reorder = ParseDoubleFlag("--fault-reorder", v, 0.0, 1.0,
                                          "probability in [0, 1]");
    } else if ((v = val("--fault-crash-node="))) {
      opt.fault.crash_node = ParseUint32Flag(
          "--fault-crash-node", v, 0, UINT32_MAX, "node index");
    } else if ((v = val("--fault-crash-phase="))) {
      opt.fault.crash_phase = ParseUint32Flag(
          "--fault-crash-phase", v, 0, UINT32_MAX, "phase index");
    } else if ((v = val("--fault-slow-node="))) {
      opt.fault.slow_node = ParseUint32Flag(
          "--fault-slow-node", v, 0, UINT32_MAX, "node index");
    } else if ((v = val("--fault-slow-seconds="))) {
      opt.fault.slowdown_seconds = ParseDoubleFlag(
          "--fault-slow-seconds", v, 0.0, 1e9, "seconds in [0, 1e9]");
    } else if ((v = val("--replicas="))) {
      opt.replicas = ParseUint32Flag("--replicas", v, 1, 1u << 16,
                                     "integer in [1, 65536]");
    } else if ((v = val("--phase-deadline="))) {
      opt.phase_deadline = ParseDoubleFlag("--phase-deadline", v, 0.0, 1e9,
                                           "seconds in [0, 1e9]");
    } else if ((v = val("--recovery-attempts="))) {
      opt.recovery_attempts = ParseUint32Flag(
          "--recovery-attempts", v, 1, 1u << 10, "integer in [1, 1024]");
    } else if ((v = val("--recovery-backoff="))) {
      opt.recovery_backoff = ParseDoubleFlag(
          "--recovery-backoff", v, 0.0, 1e9, "seconds in [0, 1e9]");
    } else if ((v = val("--fault-retries="))) {
      opt.fault.max_retries = ParseUint32Flag(
          "--fault-retries", v, 1, 1u << 20,
          "integer in [1, 1048576]; 0 retries cannot recover any loss");
    } else if ((v = val("--fault-seed="))) {
      opt.fault_seed = ParseUint64Flag("--fault-seed", v, 0, UINT64_MAX,
                                       "non-negative integer");
      opt.fault_seed_set = true;
    } else if ((v = val("--algo="))) {
      opt.algos = SplitList(v);
      if (opt.algos.empty()) {
        std::fprintf(stderr, "--algo needs at least one algorithm\n");
        std::exit(1);
      }
    } else if ((v = val("--profile="))) {
      opt.profile = v;
      if (opt.profile != "json" && opt.profile != "csv" &&
          opt.profile != "table") {
        FlagError("--profile", v, "json | csv | table");
      }
    } else if ((v = val("--trace="))) {
      opt.trace_path = v;
      if (opt.trace_path.empty()) {
        FlagError("--trace", v, "output file path");
      }
    } else if ((v = val("--explain="))) {
      opt.explain = v;
      if (opt.explain != "json" && opt.explain != "table") {
        FlagError("--explain", v, "json | table");
      }
    } else if ((v = val("--explain-top="))) {
      opt.explain_top = ParseUint64Flag("--explain-top", v, 0, 1u << 20,
                                        "integer in [0, 1048576]");
    } else if ((v = val("--blame="))) {
      opt.blame = v;
      if (opt.blame != "json" && opt.blame != "table") {
        FlagError("--blame", v, "json | table");
      }
    } else if ((v = val("--blame-top="))) {
      opt.blame_top = ParseUint64Flag("--blame-top", v, 0, 1u << 20,
                                      "integer in [0, 1048576]");
    } else if ((v = val("--hot-key-threshold="))) {
      opt.hot_key_threshold = ParseUint64Flag(
          "--hot-key-threshold", v, 0, UINT64_MAX, "unsigned integer");
    } else if ((v = val("--hot-key-max-split="))) {
      opt.hot_key_max_split = ParseUint32Flag(
          "--hot-key-max-split", v, 0, 1u << 16, "integer in [0, 65536]");
    } else if (std::strcmp(a, "--metrics") == 0) {
      opt.metrics = true;
    } else if (std::strcmp(a, "--shuffle") == 0) {
      opt.shuffle = true;
    } else if (std::strcmp(a, "--balance") == 0) {
      opt.balance = true;
    } else if (std::strcmp(a, "--delta") == 0) {
      opt.delta = true;
    } else if (std::strcmp(a, "--group") == 0) {
      opt.group = true;
    } else if (std::strcmp(a, "--pipeline") == 0) {
      opt.pipeline = true;
    } else if ((v = val("--pipeline-chunk="))) {
      opt.pipeline_chunk = ParseUint64Flag("--pipeline-chunk", v, 1, 1u << 30,
                                           "bytes in [1, 2^30]");
    } else if ((v = val("--inbox-budget="))) {
      opt.inbox_budget = ParseUint64Flag("--inbox-budget", v, 1, 1ull << 40,
                                         "bytes in [1, 2^40]");
    } else if ((v = val("--egress-sched="))) {
      opt.egress_sched = v;
      if (opt.egress_sched != "fifo" && opt.egress_sched != "drr") {
        FlagError("--egress-sched", v, "fifo | drr");
      }
    } else if ((v = val("--drr-quantum="))) {
      opt.drr_quantum = ParseUint64Flag("--drr-quantum", v, 1, 1u << 30,
                                        "bytes in [1, 2^30]");
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      Usage();
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", a);
      std::exit(1);
    }
  }
  if (opt.pipeline && (opt.delta || opt.group)) {
    std::fprintf(stderr,
                 "--pipeline requires the plain wire format; drop --delta "
                 "and --group\n");
    std::exit(1);
  }
  if (opt.pipeline && (opt.replicas > 1 || opt.recovery_attempts > 0 ||
                       opt.phase_deadline > 0)) {
    std::fprintf(stderr,
                 "--pipeline does not compose with the recovery flags "
                 "(--replicas/--recovery-attempts/--phase-deadline)\n");
    std::exit(1);
  }
  if (!opt.egress_sched.empty() && !opt.pipeline) {
    std::fprintf(stderr,
                 "--egress-sched selects the pipelined fabric's NIC "
                 "scheduler; add --pipeline\n");
    std::exit(1);
  }
  if (opt.drr_quantum > 0 && opt.egress_sched != "drr") {
    std::fprintf(stderr,
                 "--drr-quantum tunes the deficit round-robin scheduler; "
                 "add --egress-sched=drr\n");
    std::exit(1);
  }
  if (!opt.blame.empty() && !opt.pipeline) {
    std::fprintf(stderr,
                 "--blame decomposes the pipelined makespan; add --pipeline "
                 "(and a pipelined algorithm: 3tj or 4tj)\n");
    std::exit(1);
  }
  return opt;
}

tj::Result<tj::JoinResult> RunByName(const std::string& name,
                                     const tj::PartitionedTable& r,
                                     const tj::PartitionedTable& s,
                                     const tj::JoinConfig& config,
                                     bool* known) {
  *known = true;
  if (name == "hj") return tj::TryRunHashJoin(r, s, config);
  if (name == "bj-r") {
    return tj::TryRunBroadcastJoin(r, s, config, tj::Direction::kRtoS);
  }
  if (name == "bj-s") {
    return tj::TryRunBroadcastJoin(r, s, config, tj::Direction::kStoR);
  }
  if (name == "2tj-r") {
    return tj::TryRunTrackJoin(r, s, config, tj::TrackJoinVersion::k2Phase,
                               tj::Direction::kRtoS);
  }
  if (name == "2tj-s") {
    return tj::TryRunTrackJoin(r, s, config, tj::TrackJoinVersion::k2Phase,
                               tj::Direction::kStoR);
  }
  if (name == "3tj") {
    if (config.pipeline.enabled) {
      return tj::TryRunPipelinedTrackJoin(r, s, config,
                                          tj::TrackJoinVersion::k3Phase);
    }
    return tj::TryRunTrackJoin(r, s, config, tj::TrackJoinVersion::k3Phase);
  }
  if (name == "4tj") {
    if (config.pipeline.enabled) {
      return tj::TryRunPipelinedTrackJoin(r, s, config,
                                          tj::TrackJoinVersion::k4Phase);
    }
    return tj::TryRunTrackJoin(r, s, config, tj::TrackJoinVersion::k4Phase);
  }
  if (name == "rid-hj") return tj::TryRunRidHashJoin(r, s, config);
  if (name == "late-hj") {
    return tj::TryRunLateMaterializedHashJoin(r, s, config);
  }
  *known = false;
  return tj::JoinResult{};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);

  tj::Workload w = [&] {
    if (opt.zipf >= 0) {
      tj::ZipfWorkloadSpec spec;
      spec.num_nodes = opt.nodes;
      spec.seed = opt.seed;
      spec.key_domain = opt.keys;
      spec.r_rows = opt.keys * opt.r_mult;
      spec.s_rows = opt.keys * opt.s_mult;
      spec.r_theta = opt.zipf;
      spec.s_theta = opt.zipf;
      spec.r_payload = opt.r_payload;
      spec.s_payload = opt.s_payload;
      return tj::GenerateZipfWorkload(spec);
    }
    tj::WorkloadSpec spec;
    spec.num_nodes = opt.nodes;
    spec.seed = opt.seed;
    spec.matched_keys = opt.keys;
    spec.r_multiplicity = opt.r_mult;
    spec.s_multiplicity = opt.s_mult;
    spec.r_pattern = opt.r_pattern;
    spec.s_pattern = opt.s_pattern;
    spec.collocation = opt.collocation;
    spec.collocated_fraction = opt.collocated_fraction;
    spec.r_unmatched = opt.r_unmatched;
    spec.s_unmatched = opt.s_unmatched;
    spec.r_payload = opt.r_payload;
    spec.s_payload = opt.s_payload;
    return tj::GenerateWorkload(spec);
  }();
  if (opt.shuffle) {
    tj::ShuffleTable(&w.r, opt.seed + 1);
    tj::ShuffleTable(&w.s, opt.seed + 2);
  }

  tj::JoinConfig config;
  config.key_bytes = opt.key_bytes;
  config.balance_loads = opt.balance;
  config.hot_key_threshold = opt.hot_key_threshold;
  config.hot_key_max_split = opt.hot_key_max_split;
  config.delta_tracking = opt.delta;
  config.group_locations = opt.group;
  config.pipeline.enabled = opt.pipeline;
  if (opt.pipeline_chunk > 0) config.pipeline.chunk_bytes = opt.pipeline_chunk;
  if (opt.inbox_budget > 0) {
    config.pipeline.inbox_budget_bytes = opt.inbox_budget;
  }
  config.pipeline.drr = (opt.egress_sched == "drr");
  config.pipeline.drr_quantum_bytes = opt.drr_quantum;
  if (opt.pipeline &&
      config.pipeline.inbox_budget_bytes / opt.nodes <
          config.pipeline.chunk_bytes) {
    std::fprintf(stderr,
                 "note: --inbox-budget=%llu / %u nodes is below the %llu-byte "
                 "chunk; each link's credit window clamps to one chunk\n",
                 static_cast<unsigned long long>(
                     config.pipeline.inbox_budget_bytes),
                 opt.nodes,
                 static_cast<unsigned long long>(config.pipeline.chunk_bytes));
  }
  config.phase_deadline_seconds = opt.phase_deadline;
  const bool faults = opt.fault.any_effect();
  if (faults) {
    config.fault_policy = &opt.fault;
    config.fault_seed = opt.fault_seed_set ? opt.fault_seed : opt.seed;
  }
  // Recovery engages when the user asks for spare capacity (--replicas), a
  // straggler-promotion deadline, or an explicit attempt budget.
  const bool recovery_on = opt.replicas > 1 || opt.recovery_attempts > 0 ||
                           opt.phase_deadline > 0;
  std::optional<tj::ReplicatedWorkload> replicated;
  if (recovery_on) replicated = tj::ReplicateWorkload(w, opt.replicas);
  tj::RecoveryOptions recovery_options;
  recovery_options.max_attempts =
      opt.recovery_attempts > 0 ? opt.recovery_attempts : 4;
  recovery_options.backoff_initial_seconds = opt.recovery_backoff;
  recovery_options.phase_deadline_seconds = opt.phase_deadline;

  std::vector<std::string> algos = opt.algos;
  if (algos.size() == 1 && algos[0] == "all") {
    algos = {"bj-r", "bj-s", "hj", "2tj-r", "2tj-s", "3tj", "4tj",
             "rid-hj", "late-hj"};
  }

  // json/csv profile output owns stdout (pipeable into schema checks or
  // spreadsheets); the human-readable report is suppressed. --explain=json
  // and --blame=json want stdout the same way, so the machine formats are
  // mutually exclusive.
  const bool machine_profile =
      opt.profile == "json" || opt.profile == "csv";
  const bool machine_explain = opt.explain == "json";
  const bool machine_blame = opt.blame == "json";
  if ((machine_profile ? 1 : 0) + (machine_explain ? 1 : 0) +
          (machine_blame ? 1 : 0) >
      1) {
    std::fprintf(stderr,
                 "--profile=json|csv, --explain=json and --blame=json all "
                 "write machine output to stdout; pick one\n");
    return 1;
  }
  const bool machine_out = machine_profile || machine_explain || machine_blame;
  if (!opt.trace_path.empty()) tj::Tracer::Global().Enable();
  // The trace is written even when a run fails: faulted traces are exactly
  // the ones worth inspecting (and schema-checking) after the fact.
  auto write_trace = [&opt]() -> int {
    if (opt.trace_path.empty()) return 0;
    const std::string json = tj::Tracer::Global().ToChromeJson();
    FILE* f = std::fopen(opt.trace_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "cannot write trace file '%s'\n",
                   opt.trace_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::fprintf(stderr, "trace: %zu events written to %s\n",
                 tj::Tracer::Global().EventCount(), opt.trace_path.c_str());
    return 0;
  };
  if (!machine_out) {
    std::printf("%" PRIu64 " x %" PRIu64 " tuples on %u nodes (%u/%u byte "
                "payloads, wk=%u)\n\n",
                w.r.TotalRows(), w.s.TotalRows(), opt.nodes, opt.r_payload,
                opt.s_payload, opt.key_bytes);
    std::printf("%-8s %12s %12s %12s %12s %12s %10s %10s\n", "algo",
                "keys&counts", "keys&nodes", "R tuples", "S tuples", "total",
                "max NIC", "net sec");
  }

  tj::NetworkTimeModel model;
  model.node_bandwidth_bytes_per_sec = opt.bandwidth_gbps * 1e9;
  uint64_t reference_digest = 0;
  uint64_t reference_rows = 0;
  bool have_reference = false;
  std::vector<tj::StepProfile> profiles;
  std::vector<tj::ScheduleExplain> explains;
  std::vector<tj::BlameReport> blames;
  for (const std::string& algo : algos) {
    bool known = false;
    // The scheduler audit only exists for the track joins — the baselines
    // never make per-key decisions.
    const bool track_algo = algo == "2tj-r" || algo == "2tj-s" ||
                            algo == "3tj" || algo == "4tj";
    tj::ScheduleAuditLog audit;
    tj::JoinConfig run_config = config;
    if (!opt.explain.empty() && track_algo) {
      run_config.schedule_audit = &audit;
    }
    run_config.collect_blame = !opt.blame.empty();
    run_config.blame_top_edges = opt.blame_top;
    tj::RecoveryReport recovery_report;
    tj::Result<tj::JoinResult> run =
        recovery_on
            ? tj::RunWithRecovery(
                  replicated->r, replicated->s, run_config, recovery_options,
                  [&](const tj::PartitionedTable& r,
                      const tj::PartitionedTable& s,
                      const tj::JoinConfig& cfg) {
                    return RunByName(algo, r, s, cfg, &known);
                  },
                  &recovery_report)
            : RunByName(algo, w.r, w.s, run_config, &known);
    if (!known) {
      std::fprintf(stderr, "unknown algorithm '%s' (try --help)\n",
                   algo.c_str());
      return 1;
    }
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algo.c_str(),
                   run.status().ToString().c_str());
      write_trace();
      // Fault-induced failures (injected loss, crashes, exhausted recovery
      // budget) get a dedicated exit code so harnesses can tell "the fault
      // won" from usage or programming errors.
      return tj::IsFaultInduced(run.status().code()) ? 3 : 2;
    }
    tj::JoinResult result = std::move(run).value();
    if (!have_reference) {
      reference_digest = result.checksum.digest();
      reference_rows = result.output_rows;
      have_reference = true;
    } else if (result.checksum.digest() != reference_digest) {
      std::fprintf(stderr, "result mismatch in %s!\n", algo.c_str());
      return 1;
    }
    if (!opt.profile.empty()) {
      result.profile.ApplyTimeModel(model);
      profiles.push_back(result.profile);
    }
    if (run_config.schedule_audit != nullptr) {
      explains.push_back(tj::BuildScheduleExplain(algo, audit, result.traffic,
                                                  opt.explain_top));
    }
    if (result.blame.has_value()) blames.push_back(std::move(*result.blame));
    if (machine_out) continue;
    const tj::TrafficMatrix& t = result.traffic;
    auto mib = [](uint64_t b) { return b / double(1 << 20); };
    std::printf(
        "%-8s %11.2fM %11.2fM %11.2fM %11.2fM %11.2fM %9.2fM %10.3f\n",
        algo.c_str(), mib(t.NetworkBytes(tj::TrafficClass::kKeysAndCounts)),
        mib(t.NetworkBytes(tj::TrafficClass::kKeysAndNodes)),
        mib(t.NetworkBytes(tj::TrafficClass::kRTuples)),
        mib(t.NetworkBytes(tj::TrafficClass::kSTuples)),
        mib(t.TotalNetworkBytes()), mib(t.MaxNodeBytes()),
        model.BottleneckSeconds(t));
    if (result.makespan_seconds > 0) {
      std::printf("  pipeline: makespan=%.3fs barrier=%.3fs overlap=%.0f%%\n",
                  result.makespan_seconds, result.barrier_makespan_seconds,
                  100.0 * (1.0 - result.makespan_seconds /
                                     result.barrier_makespan_seconds));
    }
    if (faults) {
      const tj::ReliabilityStats& rel = result.reliability;
      std::printf(
          "  faults: dropped=%" PRIu64 " corrupted=%" PRIu64
          " duplicated=%" PRIu64 " reordered=%" PRIu64
          " retransmitted=%" PRIu64 " nacks=%" PRIu64 " retrans_bytes=%" PRIu64
          "\n",
          rel.faults.frames_dropped, rel.faults.frames_corrupted,
          rel.faults.frames_duplicated, rel.faults.messages_reordered,
          rel.retransmitted_frames, rel.nack_messages,
          t.TotalRetransmitBytes());
    }
    if (recovery_on) {
      std::string dead;
      for (uint32_t node : recovery_report.dead_nodes) {
        if (!dead.empty()) dead += ",";
        dead += std::to_string(node);
      }
      std::printf("  recovery: attempts=%u failovers=%u retries=%u dead=[%s] "
                  "backoff=%.3fs latency=%.3fs recovery_bytes=%" PRIu64 "\n",
                  recovery_report.attempts, recovery_report.failovers,
                  recovery_report.retries, dead.c_str(),
                  recovery_report.backoff_seconds,
                  recovery_report.recovery_seconds,
                  recovery_report.recovery_bytes);
    }
  }
  if (opt.profile == "json") {
    std::printf("[");
    for (size_t i = 0; i < profiles.size(); ++i) {
      std::printf("%s%s", i > 0 ? ",\n " : "", tj::ToJson(profiles[i]).c_str());
    }
    std::printf("]\n");
  } else if (opt.profile == "csv") {
    std::printf("%s\n", tj::StepCsvHeader().c_str());
    for (const tj::StepProfile& p : profiles) {
      std::printf("%s", tj::ToCsv(p).c_str());
    }
  } else if (opt.profile == "table") {
    std::printf("\n");
    for (const tj::StepProfile& p : profiles) {
      std::printf("%s\n", tj::ToTable(p).c_str());
    }
  }
  if (machine_explain) {
    std::printf("[");
    for (size_t i = 0; i < explains.size(); ++i) {
      std::printf("%s%s", i > 0 ? ",\n " : "", tj::ToJson(explains[i]).c_str());
    }
    std::printf("]\n");
  } else if (opt.explain == "table") {
    // Human-readable audit; routed to stderr when a machine profile owns
    // stdout so piped output stays parseable.
    FILE* out = (machine_profile || machine_blame) ? stderr : stdout;
    for (const tj::ScheduleExplain& e : explains) {
      std::fprintf(out, "\n%s", tj::ToTable(e).c_str());
    }
  }
  if (machine_blame) {
    std::printf("[");
    for (size_t i = 0; i < blames.size(); ++i) {
      std::printf("%s%s", i > 0 ? ",\n " : "", tj::ToJson(blames[i]).c_str());
    }
    std::printf("]\n");
  } else if (opt.blame == "table") {
    FILE* out = (machine_profile || machine_explain) ? stderr : stdout;
    for (const tj::BlameReport& b : blames) {
      std::fprintf(out, "\n%s", tj::ToTable(b).c_str());
    }
  }
  if (opt.metrics) {
    FILE* out = machine_out ? stderr : stdout;
    std::fprintf(out, "\n%s",
                 tj::MetricsRegistry::Global().ToPrometheus().c_str());
  }
  if (write_trace() != 0) return 1;
  if (!machine_out) {
    std::printf("\noutcome: digest=%016" PRIx64 " rows=%" PRIu64
                " (all algorithms verified equal)\n",
                reference_digest, reference_rows);
  }
  return 0;
}
