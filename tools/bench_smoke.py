#!/usr/bin/env python3
"""Benchmark smoke + regression gate.

Runs the table2/3/4 benches at a small fixed scale (they must complete)
and the hot-key-splitting ablation (which self-verifies: it exits nonzero
when splitting changes any join checksum), then the local_kernels
throughput bench and the micro_tracker merge bench,
writes BENCH_local_kernels.json, and fails when any gated throughput
(baseline sections "tps" and "micro_tps") regresses more than the
tolerance (default 25%) below the checked-in baseline
(tools/bench_baseline.json).

Also runs one *traced* local_kernels iteration (--trace=) and fails when
span tracing costs more than --trace-tolerance (default 10%) of the
untraced throughput on any gated kernel: the tracer is advertised as
low-overhead, so CI holds it to that.

Finally runs the pipelined-fabric smoke workload (baseline section
"makespan") traced, recomputes the critical-path makespan from the
exported micro-batch spans, and fails when the modeled makespan regresses
more than the section's max_regression over the checked-in value or is
not comfortably below the barrier-mode sum-of-phases (barrier_fraction,
default 0.9): the whole point of the event-driven fabric is overlap, so
CI holds it to that. Modeled time is deterministic, so the regression
tolerance is tight. The same run emits a critical-path blame report
(--blame=json, saved as bench_smoke_blame.json next to the trace) and the
gate cross-checks three independent makespan computations to the exact
microsecond: the blame bucket sum, the pipeline.makespan_us counter, and
the critical path recomputed from the exported micro-batch spans.

The baseline section "drr_makespan" gates the DRR egress scheduler the
same way at the head-of-line-worst configuration (4 nodes, 1 KiB chunks,
a wide credit window): its makespan must stay within max_regression of
the checked-in value, its total head-of-line blame share must stay below
max_hol_share, and it must strictly beat the FIFO policy's best makespan
across fifo_sweep_chunks — the win the scheduler exists for, held by CI.

Usage:
  tools/bench_smoke.py [--build-dir build] [--threads N]
                       [--baseline tools/bench_baseline.json]
                       [--out BENCH_local_kernels.json]
                       [--tolerance 0.25] [--trace-tolerance 0.10]
"""
import argparse
import json
import os
import subprocess
import sys
import time

# Small fixed scales: large divisors shrink the paper cardinalities so the
# whole smoke stays in CI-friendly time while every phase still runs.
TABLE_BENCHES = [
    ("table2_execution_times", ["--scale=20000", "--nodes=4"]),
    ("table3_hash_join_steps", ["--scale=20000", "--nodes=4"]),
    ("table4_track_join_steps", ["--scale=20000", "--nodes=4"]),
    # Checksum-gated: the binary itself fails when hot-key splitting
    # perturbs any join result.
    ("ablation_hot_keys", ["--nodes=8"]),
]
BENCH_TIMEOUT_S = 600


def run(cmd, timeout=BENCH_TIMEOUT_S):
    start = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    wall = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(f"FAIL: {' '.join(cmd)} exited {proc.returncode}\n")
        sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        sys.exit(1)
    return proc.stdout, wall


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: tools/bench_baseline.json)")
    ap.add_argument("--out", default="BENCH_local_kernels.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional regression (default: baseline "
                         "file's tolerance, else 0.25)")
    ap.add_argument("--threads", type=int,
                    default=min(8, os.cpu_count() or 1))
    ap.add_argument("--trace-tolerance", type=float, default=0.10,
                    help="allowed fractional throughput loss with span "
                         "tracing enabled (default: 0.10)")
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(repo, "tools",
                                                  "bench_baseline.json")
    with open(baseline_path) as f:
        baseline = json.load(f)
    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.get("tolerance", 0.25))

    bench_dir = os.path.join(args.build_dir, "bench")
    threads = [f"--threads={args.threads}"]

    table_wall = {}
    for name, flags in TABLE_BENCHES:
        print(f"=== smoke: {name} ===", flush=True)
        _, wall = run([os.path.join(bench_dir, name)] + flags + threads)
        table_wall[name] = round(wall, 3)
        print(f"    ok ({wall:.1f}s)")

    print("=== local_kernels throughput ===", flush=True)
    out, wall = run([os.path.join(bench_dir, "local_kernels")] + threads)
    kernels = json.loads(out)

    # Tracker-merge microbench: single-threaded by construction (the k-way
    # merge is one tracker's local work), gated through the separate
    # "micro_tps" baseline section so the traced-overhead loop below stays
    # scoped to local_kernels.
    print("=== micro_tracker merge throughput ===", flush=True)
    micro_out, _ = run([os.path.join(bench_dir, "micro_tracker")])
    micro = json.loads(micro_out)

    # Traced iterations: same bench with span tracing on. The trace file
    # must come out as loadable Chrome JSON, and throughput on the gated
    # kernels may drop at most --trace-tolerance below the untraced run.
    # Runner jitter at this scale exceeds the tolerance, so the traced side
    # takes the best of two runs — that still catches real instrumentation
    # overhead (which hits every run) without tripping on scheduler noise.
    print("=== local_kernels throughput (traced) ===", flush=True)
    trace_path = os.path.join(args.build_dir, "bench_smoke_trace.json")
    traced_kernels = {}
    for _ in range(2):
        traced_out, _ = run([os.path.join(bench_dir, "local_kernels"),
                             f"--trace={trace_path}"] + threads)
        for metric, tps in json.loads(traced_out).items():
            if isinstance(tps, (int, float)) and not isinstance(tps, bool):
                traced_kernels[metric] = max(tps,
                                             traced_kernels.get(metric, tps))
    with open(trace_path) as f:
        trace_doc = json.load(f)
    if not trace_doc.get("traceEvents"):
        sys.stderr.write(f"FAIL: {trace_path} has no traceEvents\n")
        return 1
    print(f"    trace ok ({len(trace_doc['traceEvents'])} events)")

    # Pipelined-fabric makespan gate: deterministic modeled time, so this
    # is a correctness-of-overlap check, not a noisy perf measurement.
    makespan_section = baseline.get("makespan")
    makespan_report = None
    makespan_failures = []
    if makespan_section:
        print("=== pipelined makespan (modeled) ===", flush=True)
        pipeline_trace = os.path.join(args.build_dir,
                                      "bench_smoke_pipeline_trace.json")
        tjsim = os.path.join(args.build_dir, "tools", "tjsim")
        blame_out, _ = run([tjsim] + makespan_section["workload"] +
                           [f"--trace={pipeline_trace}", "--blame=json"])
        with open(pipeline_trace) as f:
            pipeline_doc = json.load(f)
        pipeline_events = pipeline_doc.get("traceEvents", [])
        mb_spans = [e for e in pipeline_events
                    if e.get("ph") == "X" and e.get("cat") == "mb"]
        counters = {name: [e["args"]["value"] for e in pipeline_events
                           if e.get("ph") == "C" and e.get("name") == name]
                    for name in ("pipeline.makespan_us",
                                 "pipeline.barrier_us")}
        if not mb_spans or not all(counters.values()):
            sys.stderr.write("FAIL: pipelined trace is missing micro-batch "
                             "spans or makespan counters\n")
            return 1
        # The critical path ends where the last micro-batch span ends; it
        # must agree with the fabric's own makespan counter.
        span_makespan_us = max(e["ts"] + e["dur"] for e in mb_spans)
        makespan_us = counters["pipeline.makespan_us"][-1]
        barrier_us = counters["pipeline.barrier_us"][-1]
        if abs(span_makespan_us - makespan_us) > 1:
            makespan_failures.append(
                f"trace critical path {span_makespan_us}us disagrees with "
                f"pipeline.makespan_us {makespan_us}us")
        base_us = makespan_section["makespan_us"]
        max_regression = makespan_section.get("max_regression", 0.10)
        barrier_fraction = makespan_section.get("barrier_fraction", 0.9)
        ceiling_us = base_us * (1.0 + max_regression)
        if makespan_us > ceiling_us:
            makespan_failures.append(
                f"pipelined makespan {makespan_us}us regressed more than "
                f"{max_regression:.0%} over baseline {base_us}us")
        if makespan_us > barrier_fraction * barrier_us:
            makespan_failures.append(
                f"pipelined makespan {makespan_us}us is not below "
                f"{barrier_fraction:.0%} of the barrier sum-of-phases "
                f"{barrier_us}us (overlap lost)")
        # Blame cross-check: the critical-path decomposition must reconcile
        # exactly with both the fabric's makespan counter and the critical
        # path recomputed from the exported spans. Three independent paths
        # to the same microsecond count, or the gate fails.
        blame_reports = json.loads(blame_out)
        blame_path = os.path.join(args.build_dir, "bench_smoke_blame.json")
        with open(blame_path, "w") as f:
            f.write(blame_out)
        blame_summary = []
        for blame in blame_reports:
            if not blame.get("reconciled"):
                makespan_failures.append(
                    f"blame report {blame.get('algorithm')} did not "
                    f"reconcile: bucket sum {blame.get('bucket_sum_us')}us "
                    f"vs makespan {blame.get('makespan_us')}us")
            if blame.get("makespan_us") != makespan_us:
                makespan_failures.append(
                    f"blame report {blame.get('algorithm')} makespan "
                    f"{blame.get('makespan_us')}us disagrees with "
                    f"pipeline.makespan_us {makespan_us}us")
            blame_summary.append({
                "algorithm": blame.get("algorithm"),
                "makespan_us": blame.get("makespan_us"),
                "bucket_sum_us": blame.get("bucket_sum_us"),
                "hol_share": blame.get("hol_share"),
                "reconciled": bool(blame.get("reconciled")),
            })
        makespan_report = {
            "workload": makespan_section["workload"],
            "makespan_us": makespan_us,
            "span_makespan_us": span_makespan_us,
            "barrier_us": barrier_us,
            "baseline_us": base_us,
            "ceiling_us": round(ceiling_us),
            "barrier_fraction": barrier_fraction,
            "overlap": round(1.0 - makespan_us / barrier_us, 4),
            "blame": blame_summary,
            "pass": not makespan_failures,
        }
        status = "ok" if not makespan_failures else "REGRESSION"
        print(f"    makespan {makespan_us}us vs barrier {barrier_us}us "
              f"(overlap {makespan_report['overlap']:.0%}, baseline "
              f"{base_us}us) {status}")
        for blame in blame_summary:
            rec = "exact" if blame["reconciled"] else "MISMATCH"
            print(f"    blame {blame['algorithm']}: bucket sum "
                  f"{blame['bucket_sum_us']}us == makespan "
                  f"{blame['makespan_us']}us ({rec}, hol share "
                  f"{blame['hol_share']:.0%})")

    # DRR egress-scheduler gate (baseline section "drr_makespan"): at the
    # head-of-line-worst configuration (1 KiB chunks) the per-destination
    # scheduler must keep total HOL blame under the section's ceiling and
    # beat the FIFO policy's best chunk size outright, with the same
    # three-way blame/counter/trace makespan cross-check as above. Modeled
    # time is deterministic, so every bound here is tight.
    drr_section = baseline.get("drr_makespan")
    drr_report = None
    drr_failures = []
    if drr_section:
        print("=== DRR egress scheduler (modeled) ===", flush=True)
        tjsim = os.path.join(args.build_dir, "tools", "tjsim")
        drr_trace = os.path.join(args.build_dir, "bench_smoke_drr_trace.json")
        blame_out, _ = run([tjsim] + drr_section["workload"] +
                           [f"--trace={drr_trace}", "--blame=json"])
        with open(drr_trace) as f:
            drr_doc = json.load(f)
        drr_events = drr_doc.get("traceEvents", [])
        mb_spans = [e for e in drr_events
                    if e.get("ph") == "X" and e.get("cat") == "mb"]
        counter_vals = [e["args"]["value"] for e in drr_events
                        if e.get("ph") == "C"
                        and e.get("name") == "pipeline.makespan_us"]
        deficit_tracks = {e.get("name") for e in drr_events
                          if e.get("ph") == "C" and
                          str(e.get("name", "")).startswith("drr.deficit.")}
        if not mb_spans or not counter_vals:
            sys.stderr.write("FAIL: DRR trace is missing micro-batch spans "
                             "or the makespan counter\n")
            return 1
        if not deficit_tracks:
            drr_failures.append(
                "DRR trace exports no drr.deficit.* counter tracks (egress "
                "scheduler not engaged?)")
        drr_makespan_us = counter_vals[-1]
        span_us = max(e["ts"] + e["dur"] for e in mb_spans)
        if abs(span_us - drr_makespan_us) > 1:
            drr_failures.append(
                f"DRR trace critical path {span_us}us disagrees with "
                f"pipeline.makespan_us {drr_makespan_us}us")
        blame_reports = json.loads(blame_out)
        with open(os.path.join(args.build_dir,
                               "bench_smoke_drr_blame.json"), "w") as f:
            f.write(blame_out)
        hol_share = None
        for blame in blame_reports:
            if not blame.get("reconciled"):
                drr_failures.append(
                    f"DRR blame report {blame.get('algorithm')} did not "
                    f"reconcile: bucket sum {blame.get('bucket_sum_us')}us "
                    f"vs makespan {blame.get('makespan_us')}us")
            if blame.get("makespan_us") != drr_makespan_us:
                drr_failures.append(
                    f"DRR blame report {blame.get('algorithm')} makespan "
                    f"{blame.get('makespan_us')}us disagrees with "
                    f"pipeline.makespan_us {drr_makespan_us}us")
            hol_share = blame.get("hol_share")
        base_us = drr_section["makespan_us"]
        max_regression = drr_section.get("max_regression", 0.10)
        ceiling_us = base_us * (1.0 + max_regression)
        if drr_makespan_us > ceiling_us:
            drr_failures.append(
                f"DRR makespan {drr_makespan_us}us regressed more than "
                f"{max_regression:.0%} over baseline {base_us}us")
        max_hol_share = drr_section.get("max_hol_share", 0.30)
        if hol_share is None:
            drr_failures.append("DRR blame report carries no hol_share")
        elif hol_share >= max_hol_share:
            drr_failures.append(
                f"DRR head-of-line share {hol_share:.1%} is not below "
                f"{max_hol_share:.0%}")
        # The FIFO policy's chunk sweep: DRR must strictly beat its best.
        fifo_best_us = None
        fifo_sweep = {}
        for chunk in drr_section.get("fifo_sweep_chunks", []):
            out, _ = run([tjsim] + drr_section["fifo_workload"] +
                         [f"--pipeline-chunk={chunk}", "--blame=json"])
            fifo_us = json.loads(out)[-1]["makespan_us"]
            fifo_sweep[str(chunk)] = fifo_us
            if fifo_best_us is None or fifo_us < fifo_best_us:
                fifo_best_us = fifo_us
        if fifo_best_us is not None and drr_makespan_us >= fifo_best_us:
            drr_failures.append(
                f"DRR makespan {drr_makespan_us}us does not strictly beat "
                f"the FIFO chunk sweep's best {fifo_best_us}us")
        drr_report = {
            "workload": drr_section["workload"],
            "makespan_us": drr_makespan_us,
            "span_makespan_us": span_us,
            "baseline_us": base_us,
            "ceiling_us": round(ceiling_us),
            "hol_share": hol_share,
            "max_hol_share": max_hol_share,
            "fifo_sweep_us": fifo_sweep,
            "fifo_best_us": fifo_best_us,
            "pass": not drr_failures,
        }
        status = "ok" if not drr_failures else "REGRESSION"
        print(f"    drr makespan {drr_makespan_us}us (hol share "
              f"{hol_share:.0%}) vs fifo best {fifo_best_us}us, baseline "
              f"{base_us}us {status}")

    gate = []
    failures = list(makespan_failures) + list(drr_failures)
    gated = [(metric, base, kernels.get(metric))
             for metric, base in baseline["tps"].items()]
    gated += [(metric, base, micro.get(metric))
              for metric, base in baseline.get("micro_tps", {}).items()]
    for metric, base_tps, measured in gated:
        if measured is None:
            failures.append(f"{metric}: missing from bench output")
            continue
        floor = base_tps * (1.0 - tolerance)
        ok = measured >= floor
        gate.append({"metric": metric, "measured_tps": measured,
                     "baseline_tps": base_tps, "floor_tps": round(floor),
                     "pass": ok})
        status = "ok" if ok else "REGRESSION"
        print(f"    {metric}: {measured:.3e} vs floor {floor:.3e} "
              f"(baseline {base_tps:.3e}) {status}")
        if not ok:
            failures.append(
                f"{metric}: {measured:.3e} tuples/s is more than "
                f"{tolerance:.0%} below baseline {base_tps:.3e}")

    trace_gate = []
    for metric in baseline["tps"]:
        untraced = kernels.get(metric)
        traced = traced_kernels.get(metric)
        if untraced is None or traced is None:
            failures.append(f"{metric}: missing from traced bench output")
            continue
        floor = untraced * (1.0 - args.trace_tolerance)
        ok = traced >= floor
        trace_gate.append({"metric": metric, "traced_tps": traced,
                           "untraced_tps": untraced, "pass": ok})
        status = "ok" if ok else "OVERHEAD"
        print(f"    {metric} traced: {traced:.3e} vs untraced "
              f"{untraced:.3e} {status}")
        if not ok:
            failures.append(
                f"{metric}: tracing costs more than "
                f"{args.trace_tolerance:.0%} throughput "
                f"({traced:.3e} traced vs {untraced:.3e} untraced)")

    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "threads": args.threads,
        "tolerance": tolerance,
        "kernels": kernels,
        "micro_tracker": micro,
        "table_bench_wall_s": table_wall,
        "gate": gate,
        "trace_gate": trace_gate,
        "trace_tolerance": args.trace_tolerance,
        "makespan_gate": makespan_report,
        "drr_gate": drr_report,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    if failures:
        for msg in failures:
            sys.stderr.write(f"bench gate FAILED: {msg}\n")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
