#!/usr/bin/env python3
"""Benchmark smoke + regression gate.

Runs the table2/3/4 benches at a small fixed scale (they must complete),
then the local_kernels throughput bench, writes BENCH_local_kernels.json,
and fails when any gated kernel throughput regresses more than the
tolerance (default 25%) below the checked-in baseline
(tools/bench_baseline.json).

Usage:
  tools/bench_smoke.py [--build-dir build] [--threads N]
                       [--baseline tools/bench_baseline.json]
                       [--out BENCH_local_kernels.json]
                       [--tolerance 0.25]
"""
import argparse
import json
import os
import subprocess
import sys
import time

# Small fixed scales: large divisors shrink the paper cardinalities so the
# whole smoke stays in CI-friendly time while every phase still runs.
TABLE_BENCHES = [
    ("table2_execution_times", ["--scale=20000", "--nodes=4"]),
    ("table3_hash_join_steps", ["--scale=20000", "--nodes=4"]),
    ("table4_track_join_steps", ["--scale=20000", "--nodes=4"]),
]
BENCH_TIMEOUT_S = 600


def run(cmd, timeout=BENCH_TIMEOUT_S):
    start = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    wall = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(f"FAIL: {' '.join(cmd)} exited {proc.returncode}\n")
        sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        sys.exit(1)
    return proc.stdout, wall


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: tools/bench_baseline.json)")
    ap.add_argument("--out", default="BENCH_local_kernels.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional regression (default: baseline "
                         "file's tolerance, else 0.25)")
    ap.add_argument("--threads", type=int,
                    default=min(8, os.cpu_count() or 1))
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(repo, "tools",
                                                  "bench_baseline.json")
    with open(baseline_path) as f:
        baseline = json.load(f)
    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.get("tolerance", 0.25))

    bench_dir = os.path.join(args.build_dir, "bench")
    threads = [f"--threads={args.threads}"]

    table_wall = {}
    for name, flags in TABLE_BENCHES:
        print(f"=== smoke: {name} ===", flush=True)
        _, wall = run([os.path.join(bench_dir, name)] + flags + threads)
        table_wall[name] = round(wall, 3)
        print(f"    ok ({wall:.1f}s)")

    print("=== local_kernels throughput ===", flush=True)
    out, wall = run([os.path.join(bench_dir, "local_kernels")] + threads)
    kernels = json.loads(out)

    gate = []
    failures = []
    for metric, base_tps in baseline["tps"].items():
        measured = kernels.get(metric)
        if measured is None:
            failures.append(f"{metric}: missing from bench output")
            continue
        floor = base_tps * (1.0 - tolerance)
        ok = measured >= floor
        gate.append({"metric": metric, "measured_tps": measured,
                     "baseline_tps": base_tps, "floor_tps": round(floor),
                     "pass": ok})
        status = "ok" if ok else "REGRESSION"
        print(f"    {metric}: {measured:.3e} vs floor {floor:.3e} "
              f"(baseline {base_tps:.3e}) {status}")
        if not ok:
            failures.append(
                f"{metric}: {measured:.3e} tuples/s is more than "
                f"{tolerance:.0%} below baseline {base_tps:.3e}")

    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "threads": args.threads,
        "tolerance": tolerance,
        "kernels": kernels,
        "table_bench_wall_s": table_wall,
        "gate": gate,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    if failures:
        for msg in failures:
            sys.stderr.write(f"bench gate FAILED: {msg}\n")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
